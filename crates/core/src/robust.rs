//! Monte-Carlo robustness evaluation: shared helpers for the
//! variation-aware fitness path and a standalone (uncached) reference
//! oracle.
//!
//! The fast path lives inside [`crate::fitness::AxTrainProblem`]: the M
//! perturbed trials are appended as extra sample segments of the
//! existing columnar engine, so robustness costs ~M× *total*, not M×
//! per-row, and perturbed hidden columns are memoized per trial in the
//! population-level [`crate::columns::NeuronColumnCache`] (device slot
//! `t + 1`). This module provides the pieces both sides agree on:
//!
//! * [`extended_matrix`] — the trial-major perturbed dataset (trial
//!   `t`'s rows occupy segment `[t·n, (t+1)·n)`), built with
//!   [`pe_hw::VariationModel`]'s stateless keyed sampler so the same
//!   seeds always produce the same bytes.
//! * [`mc_accuracy`] — an **uncached** Monte-Carlo oracle evaluating a
//!   decoded network per trial with the per-device gain/offset draws
//!   applied to every accumulator. The cached fitness path is tested
//!   bit-equal against this oracle, and the `fig_robust` bench uses it
//!   to measure how nominal and robust fronts degrade under variation.

use pe_hw::variation::{trial_seed, RobustStat, VariationModel};
use pe_mlp::columnar::{self, ColumnMatrix, QuantMatrix};
use pe_mlp::AxMlp;

/// Per-trial seeds `trial_seed(master, 0..trials)` — the single
/// derivation both the fitness path and the oracle use.
#[must_use]
pub fn trial_seeds(master: u64, trials: usize) -> Vec<u64> {
    (0..trials).map(|t| trial_seed(master, t)).collect()
}

/// The trial-major extended dataset: one input-perturbed copy of
/// `rows` per trial seed, concatenated. With a zero-variance model the
/// segments are byte-identical copies of `rows`.
#[must_use]
pub fn extended_matrix(
    rows: &QuantMatrix,
    model: &VariationModel,
    seeds: &[u64],
    input_bits: u32,
) -> QuantMatrix {
    let (n, w) = (rows.len(), rows.width());
    let mut data = Vec::with_capacity(seeds.len() * n * w);
    for &seed in seeds {
        for s in 0..n {
            for (f, &x) in rows.row(s).iter().enumerate() {
                data.push(model.perturb_input(seed, s, f, x, input_bits));
            }
        }
    }
    QuantMatrix::from_flat(data, w, seeds.len() * n)
}

/// How a network's accuracy holds up over Monte-Carlo variation
/// trials.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RobustSummary {
    /// Accuracy with no variation applied (the deployment nominal).
    pub nominal: f64,
    /// Minimum per-trial accuracy.
    pub worst: f64,
    /// The [`RobustStat::P95`] statistic over the trials.
    pub p95: f64,
    /// Mean per-trial accuracy.
    pub mean: f64,
}

/// Uncached Monte-Carlo accuracy of `mlp` on `rows`/`labels` under
/// `model`: the reference oracle (see the module docs).
///
/// Every trial perturbs the inputs, applies per-device gain/offset
/// draws to each neuron's accumulator and re-runs the columnar
/// forward. Deterministic in `(model, trials, master_seed)` only.
///
/// # Panics
///
/// Panics if `trials == 0`, data and labels disagree, or the network
/// has no layers.
#[must_use]
pub fn mc_accuracy(
    mlp: &AxMlp,
    rows: &QuantMatrix,
    labels: &[usize],
    model: &VariationModel,
    trials: usize,
    master_seed: u64,
) -> RobustSummary {
    assert!(trials > 0, "Monte-Carlo needs >= 1 trial");
    assert_eq!(rows.len(), labels.len());
    let input_bits = mlp.layers.first().expect("a non-empty network").input_bits;
    let nominal = columnar::accuracy_columns(mlp, &rows.columns(), labels);
    let seeds = trial_seeds(master_seed, trials);
    let extended = extended_matrix(rows, model, &seeds, input_bits);
    let columns = extended.columns();
    let n = rows.len();
    let accs: Vec<f64> = seeds
        .iter()
        .enumerate()
        .map(|(t, &seed)| trial_accuracy(mlp, &columns, labels, model, seed, t * n, n))
        .collect();
    RobustSummary {
        nominal,
        worst: RobustStat::WorstCase.statistic(&accs),
        p95: RobustStat::P95.statistic(&accs),
        mean: accs.iter().sum::<f64>() / accs.len() as f64,
    }
}

/// One trial's accuracy: a plain (allocation-per-layer, uncached)
/// columnar forward over segment `[base, base + n)` of the extended
/// columns, with the trial's device draws applied pre-activation.
fn trial_accuracy(
    mlp: &AxMlp,
    extended: &ColumnMatrix,
    labels: &[usize],
    model: &VariationModel,
    seed: u64,
    base: usize,
    n: usize,
) -> f64 {
    let mut acc = Vec::new();
    let mut narrow = Vec::new();
    let mut act: Vec<Vec<u8>> = Vec::new();
    let mut first = true;
    for (li, layer) in mlp.layers.iter().enumerate() {
        let refs: Vec<&[u8]> = if first {
            (0..extended.width())
                .map(|f| &extended.col(f)[base..base + n])
                .collect()
        } else {
            act.iter().map(|c| &c[..]).collect()
        };
        let mut accs: Vec<Vec<i64>> = Vec::with_capacity(layer.neurons.len());
        for (ni, neuron) in layer.neurons.iter().enumerate() {
            columnar::accumulate_neuron_column(neuron, &refs, n, &mut acc, &mut narrow);
            let draw = model.device_draw(seed, li, ni, layer.input_bits);
            if !draw.is_identity() {
                for a in acc.iter_mut() {
                    *a = draw.apply(*a);
                }
            }
            accs.push(std::mem::take(&mut acc));
        }
        drop(refs);
        match layer.qrelu {
            Some(q) => {
                act = accs
                    .iter()
                    .map(|column| {
                        let mut out = Vec::new();
                        columnar::qrelu_column(q, column, &mut out);
                        out
                    })
                    .collect();
                first = false;
            }
            None => {
                let cols: Vec<&[i64]> = accs.iter().map(|c| &c[..]).collect();
                let preds = columnar::argmax_columns(&cols, n);
                let hits = preds.iter().zip(labels).filter(|&(p, l)| p == l).count();
                return hits as f64 / n as f64;
            }
        }
    }
    // Trailing-QReLU topology: argmax over the final activations.
    let refs: Vec<&[u8]> = act.iter().map(|c| &c[..]).collect();
    let preds = columnar::argmax_columns(&refs, n);
    let hits = preds.iter().zip(labels).filter(|&(p, l)| p == l).count();
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::{AxLayer, AxNeuron, AxWeight};

    fn toy_mlp() -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                qrelu: None,
                neurons: vec![
                    AxNeuron {
                        weights: vec![AxWeight {
                            mask: 0,
                            shift: 0,
                            negative: false,
                        }],
                        bias: 0,
                    },
                    AxNeuron {
                        weights: vec![AxWeight {
                            mask: 0b1111,
                            shift: 0,
                            negative: false,
                        }],
                        bias: -7,
                    },
                ],
            }],
        }
    }

    fn toy_data() -> (QuantMatrix, Vec<usize>) {
        let rows: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        (QuantMatrix::from_rows(&rows), labels)
    }

    #[test]
    fn zero_variance_trials_equal_nominal() {
        let (rows, labels) = toy_data();
        let mlp = toy_mlp();
        let summary = mc_accuracy(&mlp, &rows, &labels, &VariationModel::nominal(), 5, 42);
        assert_eq!(summary.nominal, 1.0);
        assert_eq!(summary.worst, 1.0);
        assert_eq!(summary.p95, 1.0);
        assert_eq!(summary.mean, 1.0);
    }

    #[test]
    fn extended_matrix_is_trial_major_copies_when_zero_variance() {
        let (rows, _) = toy_data();
        let seeds = trial_seeds(9, 3);
        let ext = extended_matrix(&rows, &VariationModel::nominal(), &seeds, 4);
        assert_eq!(ext.len(), 3 * rows.len());
        for t in 0..3 {
            for s in 0..rows.len() {
                assert_eq!(ext.row(t * rows.len() + s), rows.row(s));
            }
        }
    }

    #[test]
    fn variation_degrades_a_marginal_classifier() {
        // The threshold sits right at the decision boundary, so noise
        // must flip some trials' samples.
        let (rows, labels) = toy_data();
        let mlp = toy_mlp();
        let model = VariationModel {
            input_noise_lsb: 1.5,
            ..VariationModel::nominal()
        };
        let summary = mc_accuracy(&mlp, &rows, &labels, &model, 16, 7);
        assert_eq!(summary.nominal, 1.0);
        assert!(summary.worst < 1.0, "worst {}", summary.worst);
        assert!(summary.worst <= summary.p95);
        assert!(summary.p95 <= 1.0);
        assert!(summary.mean < 1.0 && summary.mean > 0.5);
    }

    #[test]
    fn oracle_is_deterministic_in_the_master_seed() {
        let (rows, labels) = toy_data();
        let mlp = toy_mlp();
        let model = VariationModel::printed_egfet();
        let a = mc_accuracy(&mlp, &rows, &labels, &model, 8, 3);
        let b = mc_accuracy(&mlp, &rows, &labels, &model, 8, 3);
        assert_eq!(a, b);
        let c = mc_accuracy(&mlp, &rows, &labels, &model, 8, 4);
        assert_ne!(a, c, "distinct masters must decorrelate the trials");
    }
}
