//! The hardware-approximation-aware GA trainer (paper Fig. 2, left
//! half) plus the hardware-unaware plain-GA reference of Table III.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pe_datasets::QuantizedData;
use pe_hw::CostModel;
use pe_mlp::{AxMlp, FixedMlp, QReluCfg, QuantMatrix};
use pe_nsga::{Evaluation, GenerationStats, IntProblem, Nsga2};

use crate::config::AxTrainConfig;
use crate::error::FlowError;
use crate::fitness::AxTrainProblem;
use crate::genome::{GenomeSpec, LayerGenomeSpec};
use crate::pareto::{true_pareto_front, DesignCandidate, DesignPoint};
use crate::progress::{RunControl, StageKind};

/// Everything a search run produces (also exported as
/// [`SearchOutcome`](crate::engine::SearchOutcome) — the return type of
/// every [`SearchEngine`](crate::engine::SearchEngine)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingOutcome {
    /// True (hardware-evaluated) Pareto front, ascending area.
    pub front: Vec<DesignPoint>,
    /// The GA's estimated front before hardware analysis (empty for
    /// engines without an estimate/analysis split).
    pub estimated_front: Vec<DesignCandidate>,
    /// Per-generation statistics (empty for non-generational engines).
    pub history: Vec<GenerationStats>,
    /// Total candidate evaluations (`0` when an engine doesn't count).
    pub evaluations: u64,
    /// Wall-clock duration of the search phase proper (for the GA
    /// engines: the evolution loop, excluding seeding, local polish
    /// and hardware analysis — the paper's Table III measurement).
    pub ga_wall: Duration,
}

/// The paper's trainer: NSGA-II over the `(m, s, k, b)` chromosome with
/// the (error, FA-area) objectives, doped initialization and the 10%
/// feasibility bound.
#[derive(Debug, Clone)]
pub struct HwAwareTrainer {
    config: AxTrainConfig,
    eval_threads: Option<usize>,
    variation: Option<pe_hw::VariationConfig>,
    store: Option<crate::store::StoreSink>,
    checkpoint: Option<crate::checkpoint::CheckpointSpec>,
    islands: Option<pe_nsga::IslandConfig>,
}

impl HwAwareTrainer {
    /// Trainer with the given configuration.
    #[must_use]
    pub fn new(config: AxTrainConfig) -> Self {
        Self {
            config,
            eval_threads: None,
            variation: None,
            store: None,
            checkpoint: None,
            islands: None,
        }
    }

    /// Worker budget for batch fitness evaluation (default: the global
    /// [`thread_budget`](crate::eval::thread_budget)). The pipeline's
    /// multi-dataset runs pass their per-study share here so nested
    /// pools never oversubscribe; thread count never affects results.
    #[must_use]
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads.max(1));
        self
    }

    /// Train against Monte-Carlo process variation: the fitness
    /// accuracy becomes the configured robust statistic over the
    /// variation trials (see
    /// [`AxTrainProblem::with_variation`]), seeded from the GA seed so
    /// the trials are deterministic per study. `None` (the default)
    /// keeps the nominal fitness bit for bit.
    #[must_use]
    pub fn with_variation(mut self, variation: Option<pe_hw::VariationConfig>) -> Self {
        self.variation = variation;
        self
    }

    /// Attach a design-store sink: every unique design the GA
    /// evaluates is persisted, front members are annotated with their
    /// test accuracy when the run finishes, and — if the sink carries
    /// warm-start candidates — shape-compatible stored designs join
    /// the initial population alongside the doped seeds. Ingest is a
    /// pure side channel (fronts are byte-identical with or without
    /// it); warm-start seeds, by design, *do* steer the search.
    #[must_use]
    pub fn with_store(mut self, store: Option<crate::store::StoreSink>) -> Self {
        self.store = store;
        self
    }

    /// Make the GA loop crash-safe: resume from a valid checkpoint at
    /// the spec's path and flush new checkpoints at its cadence (see
    /// [`crate::checkpoint`]). Checkpointing is pure durability — a
    /// resumed run reproduces the uninterrupted run's outcome byte for
    /// byte. `None` (the default) keeps the single-shot behavior.
    #[must_use]
    pub fn with_checkpoint(
        mut self,
        checkpoint: Option<crate::checkpoint::CheckpointSpec>,
    ) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Evolve an island archipelago instead of one population: the
    /// configured topology (island count, migration cadence, migrant
    /// batch — `topology.nsga` must equal this trainer's NSGA
    /// configuration) splits the same evaluation budget over N
    /// concurrently-evolving sub-populations with deterministic ring
    /// migration (see [`pe_nsga::IslandModel`]). `None` (the default)
    /// keeps the single-population loop bit for bit.
    ///
    /// # Panics
    ///
    /// [`train`](Self::train) panics if the topology fails
    /// [`pe_nsga::IslandConfig::validate`] or disagrees with the
    /// trainer's NSGA configuration.
    #[must_use]
    pub fn with_islands(mut self, islands: Option<pe_nsga::IslandConfig>) -> Self {
        self.islands = islands;
        self
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AxTrainConfig {
        &self.config
    }

    /// Derive the genome layout implied by a baseline network: same
    /// topology, same QReLU configuration.
    #[must_use]
    pub fn genome_spec_for(&self, baseline: &FixedMlp) -> GenomeSpec {
        let mut input_bits = baseline.input_bits;
        let layers: Vec<LayerGenomeSpec> = baseline
            .layers
            .iter()
            .map(|l| {
                let spec = LayerGenomeSpec {
                    fan_in: l.weights.first().map_or(0, Vec::len),
                    neurons: l.weights.len(),
                    input_bits,
                    qrelu: l.qrelu,
                };
                if let Some(q) = l.qrelu {
                    input_bits = q.out_bits;
                }
                spec
            })
            .collect();
        GenomeSpec::new(layers, self.config.weight_bits, self.config.bias_bits)
    }

    /// Run the full flow: GA exploration on the training split, then
    /// hardware analysis and true-Pareto extraction with test-split
    /// accuracies.
    ///
    /// `baseline_train_accuracy` anchors the 10% feasibility bound.
    /// `cost` names the conditions the study runs under: its
    /// [`CostScenario`](pe_hw::CostScenario) drives the GA's area/power
    /// objectives and constraints, and the model itself evaluates the
    /// final front — one cost layer from fitness to report.
    ///
    /// # Panics
    ///
    /// Panics if the training data is empty or does not match the
    /// baseline's input width.
    #[must_use]
    pub fn train(
        &self,
        baseline: &FixedMlp,
        baseline_train_accuracy: f64,
        train: &QuantizedData,
        test: &QuantizedData,
        cost: &dyn CostModel,
        name: &str,
    ) -> TrainingOutcome {
        self.train_controlled(
            baseline,
            baseline_train_accuracy,
            train,
            test,
            cost,
            name,
            &RunControl::NONE,
        )
        .expect("a NONE control cannot cancel")
    }

    /// [`train`](Self::train) with progress reporting and cooperative
    /// cancellation: one
    /// [`ProgressEvent::GaGeneration`](crate::ProgressEvent::GaGeneration) per
    /// generation, and cancellation honored at generation granularity.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] when `ctl`'s token is set.
    ///
    /// # Panics
    ///
    /// Panics as [`train`](Self::train) does.
    #[allow(clippy::too_many_arguments)] // mirrors `train` + the control
    pub fn train_controlled(
        &self,
        baseline: &FixedMlp,
        baseline_train_accuracy: f64,
        train: &QuantizedData,
        test: &QuantizedData,
        cost: &dyn CostModel,
        name: &str,
        ctl: &RunControl<'_>,
    ) -> Result<TrainingOutcome, FlowError> {
        ctl.ensure_live(StageKind::Searched)?;
        let spec = self.genome_spec_for(baseline);
        let (rows, labels) = subsample(train, self.config.fitness_subsample);

        // The GA optimizes the same scenario the front is reported
        // under: one cost layer from the fitness objective to the
        // final hardware report.
        let mut problem = AxTrainProblem::new(
            spec.clone(),
            rows,
            labels,
            baseline_train_accuracy,
            self.config.max_accuracy_loss,
        )
        .with_objective(self.config.objective)
        .with_scenario(cost.scenario().clone());
        if let Some(variation) = &self.variation {
            // The GA seed is the per-study master: trials decorrelate
            // across datasets exactly like the GA streams do.
            problem = problem.with_variation(variation, self.config.nsga.seed);
        }
        let problem = problem.with_sink(self.store.clone());

        let doped_count = ((self.config.nsga.population as f64 * self.config.doping_fraction)
            .round() as usize)
            .max(1);
        let refine_n = problem.sample_count().min(600);
        let calibration_rows = train.features.head(train.len().min(1000));
        let refine_rows = train.features.head(refine_n);
        let mut seeds = crate::init::doped_seeds_refined(
            &spec,
            baseline,
            self.config.max_shift(),
            self.config.bias_bits,
            doped_count,
            self.config.nsga.seed,
            &calibration_rows,
            Some((&refine_rows, &train.labels[..refine_n])),
        );
        if let Some(sink) = &self.store {
            append_warm_seeds(&mut seeds, sink, &spec, self.config.nsga.population);
        }
        let seeds = seeds;

        // The evaluation core: every NSGA-II wave is deduplicated
        // against a genome memo and fanned out over the worker budget;
        // results come back in input order, so the run is
        // byte-identical to a serial, uncached one.
        let eval_threads = self.eval_threads.unwrap_or_else(crate::eval::thread_budget);
        let mut history = Vec::with_capacity(self.config.nsga.generations);
        let started = Instant::now();
        let problem_stats = || {
            let (cost_hits, cost_misses) = problem.cost_cache_stats();
            Some(crate::eval::ProblemCacheStats {
                columns: problem.column_cache_stats(),
                cost_hits,
                cost_misses,
                store: problem.store_stats(),
            })
        };
        let result = if let Some(topology) = &self.islands {
            assert_eq!(
                topology.nsga, self.config.nsga,
                "island topology must carry the trainer's NSGA configuration"
            );
            crate::eval::run_ga_islands(
                &pe_nsga::IslandModel::new(topology.clone()),
                &problem,
                seeds,
                eval_threads,
                ctl,
                &mut history,
                &problem_stats,
                self.checkpoint.as_ref(),
            )
        } else {
            crate::eval::run_ga_cached(
                &Nsga2::new(self.config.nsga.clone()),
                &problem,
                seeds,
                eval_threads,
                ctl,
                &mut history,
                &problem_stats,
                self.checkpoint.as_ref(),
            )
        };
        let ga_wall = started.elapsed();
        ctl.ensure_live(StageKind::Searched)?;

        // Estimated front -> candidates with both-split accuracies.
        let mut estimated_front: Vec<DesignCandidate> = result
            .pareto_front
            .iter()
            .map(|ind| {
                let mlp: AxMlp = spec.decode(&ind.genes);
                let test_accuracy = mlp.accuracy(&test.features, &test.labels);
                DesignCandidate {
                    train_accuracy: 1.0 - ind.evaluation.objectives[0],
                    test_accuracy,
                    estimated_area: ind.evaluation.objectives[1],
                    mlp,
                }
            })
            .collect();

        // Memetic polish of the accuracy end: coordinate-descent sweeps
        // (the same local search used on the doped seeds) applied to the
        // three most accurate front members. This substitutes for the
        // paper's ~26M-evaluation budget near convergence; the hardware
        // Pareto filter below discards any polished design whose area
        // regressed.
        let mut by_acc: Vec<usize> = (0..estimated_front.len()).collect();
        by_acc.sort_by(|&a, &b| {
            estimated_front[b]
                .train_accuracy
                .total_cmp(&estimated_front[a].train_accuracy)
        });
        let refine_n = train.len().min(2500);
        let polish_rows = train.features.head(refine_n);
        for &idx in by_acc.iter().take(5) {
            let polished = crate::init::refine_doped(
                &estimated_front[idx].mlp,
                &polish_rows,
                &train.labels[..refine_n],
                self.config.max_shift(),
                self.config.bias_bits,
                3,
            );
            if polished != estimated_front[idx].mlp {
                let mut problem_view = AxTrainProblem::new(
                    spec.clone(),
                    polish_rows.clone(),
                    train.labels[..refine_n].to_vec(),
                    baseline_train_accuracy,
                    self.config.max_accuracy_loss,
                )
                .with_objective(self.config.objective)
                .with_scenario(cost.scenario().clone());
                if let Some(variation) = &self.variation {
                    // Same statistic, same master seed: the polish view
                    // scores candidates the way the GA did (the keyed
                    // sampler makes the draws row-subset independent).
                    problem_view = problem_view.with_variation(variation, self.config.nsga.seed);
                }
                let (train_acc, area) = problem_view.score(&polished);
                let test_accuracy = polished.accuracy(&test.features, &test.labels);
                estimated_front.push(DesignCandidate {
                    train_accuracy: train_acc,
                    test_accuracy,
                    estimated_area: area,
                    mlp: polished,
                });
            }
        }

        // Front members reach the store with their held-out test
        // accuracy: that is what store-side queries Pareto-filter and
        // what a later warm-started run seeds from.
        if let Some(sink) = &self.store {
            for candidate in &estimated_front {
                sink.annotate_front(candidate);
            }
        }

        let front = true_pareto_front(estimated_front.clone(), cost, name);

        Ok(TrainingOutcome {
            front,
            estimated_front,
            history,
            evaluations: result.evaluations,
            ga_wall,
        })
    }
}

/// Append warm-start seeds from the sink's stored-front pool:
/// shape-compatible designs of the same dataset, best test accuracy
/// first, encoded and deduplicated, capped at a quarter of the
/// population so fresh doped/random exploration still dominates the
/// initial wave.
fn append_warm_seeds(
    seeds: &mut Vec<Vec<u32>>,
    sink: &crate::store::StoreSink,
    spec: &GenomeSpec,
    population: usize,
) {
    let cap = (population / 4).max(1);
    let mut added = 0usize;
    for mlp in sink.warm_candidates() {
        if added >= cap {
            break;
        }
        // `GenomeSpec::encode` asserts on topology mismatch, and a
        // store may hold designs from differently-shaped studies —
        // check first.
        if !shape_matches(spec, mlp) {
            continue;
        }
        let genes = spec.encode(mlp);
        if !seeds.contains(&genes) {
            seeds.push(genes);
            added += 1;
        }
    }
}

/// Whether a stored network has exactly the genome layout's topology
/// (layer count, neurons per layer, fan-in per neuron).
fn shape_matches(spec: &GenomeSpec, mlp: &AxMlp) -> bool {
    let layers = spec.layers();
    mlp.layers.len() == layers.len()
        && mlp.layers.iter().zip(layers).all(|(l, ls)| {
            l.neurons.len() == ls.neurons && l.neurons.iter().all(|n| n.weights.len() == ls.fan_in)
        })
}

/// Deterministic subsample: the first `limit` rows (splits are already
/// shuffled).
fn subsample(data: &QuantizedData, limit: Option<usize>) -> (QuantMatrix, Vec<usize>) {
    let n = limit.unwrap_or(usize::MAX).min(data.len());
    (data.features.head(n), data.labels[..n].to_vec())
}

/// The hardware-unaware GA reference of Table III: same NSGA-II engine,
/// but the genome is the plain 8-bit weight/bias vector, masks are not
/// trained, and accuracy is the only objective.
#[derive(Debug, Clone)]
pub struct PlainGaProblem {
    bounds: Vec<u32>,
    shape: Vec<(usize, usize, u32, Option<QReluCfg>)>,
    rows: QuantMatrix,
    labels: Vec<usize>,
    weight_bits: u32,
    bias_bits: u32,
}

impl PlainGaProblem {
    /// Build the accuracy-only GA problem for a baseline topology.
    ///
    /// # Panics
    ///
    /// Panics if the data is empty.
    #[must_use]
    pub fn new(
        baseline: &FixedMlp,
        train: &QuantizedData,
        subsample_limit: Option<usize>,
        weight_bits: u32,
        bias_bits: u32,
    ) -> Self {
        let (rows, labels) = subsample(train, subsample_limit);
        assert!(!rows.is_empty());
        let mut input_bits = baseline.input_bits;
        let mut shape = Vec::new();
        let mut bounds = Vec::new();
        for l in &baseline.layers {
            let fan_in = l.weights.first().map_or(0, Vec::len);
            let neurons = l.weights.len();
            shape.push((fan_in, neurons, input_bits, l.qrelu));
            for _ in 0..neurons {
                for _ in 0..fan_in {
                    bounds.push(1u32 << weight_bits); // signed weight, offset-encoded
                }
                bounds.push(1u32 << bias_bits);
            }
            if let Some(q) = l.qrelu {
                input_bits = q.out_bits;
            }
        }
        Self {
            bounds,
            shape,
            rows,
            labels,
            weight_bits,
            bias_bits,
        }
    }

    /// Decode genes into the integer network they represent.
    #[must_use]
    pub fn decode(&self, genes: &[u32]) -> FixedMlp {
        let w_off = 1i64 << (self.weight_bits - 1);
        let b_off = 1i64 << (self.bias_bits - 1);
        let mut cursor = 0usize;
        let mut layers = Vec::with_capacity(self.shape.len());
        let mut first_bits = None;
        for &(fan_in, neurons, input_bits, qrelu) in &self.shape {
            first_bits.get_or_insert(input_bits);
            let mut weights = Vec::with_capacity(neurons);
            let mut biases = Vec::with_capacity(neurons);
            for _ in 0..neurons {
                let row: Vec<i32> = (0..fan_in)
                    .map(|_| {
                        let g = i64::from(genes[cursor]);
                        cursor += 1;
                        (g - w_off) as i32
                    })
                    .collect();
                weights.push(row);
                let g = i64::from(genes[cursor]);
                cursor += 1;
                biases.push((g - b_off) as i32);
            }
            layers.push(pe_mlp::FixedLayer {
                weights,
                biases,
                qrelu,
            });
        }
        FixedMlp {
            input_bits: first_bits.unwrap_or(4),
            layers,
        }
    }
}

impl IntProblem for PlainGaProblem {
    fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        let mlp = self.decode(genes);
        let acc = mlp.accuracy(&self.rows, &self.labels);
        Evaluation::feasible(vec![1.0 - acc])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::FixedLayer;
    use pe_nsga::NsgaConfig;

    /// A linearly separable 1-feature problem with a 1-layer baseline.
    fn tiny_setup() -> (FixedMlp, QuantizedData, QuantizedData) {
        let baseline = FixedMlp {
            input_bits: 4,
            layers: vec![FixedLayer {
                weights: vec![vec![-10], vec![10]],
                biases: vec![70, -70],
                qrelu: None,
            }],
        };
        let features: Vec<Vec<u8>> = (0..16u8).map(|v| vec![v]).collect();
        let labels: Vec<usize> = (0..16).map(|v| usize::from(v > 7)).collect();
        let data = QuantizedData {
            features: QuantMatrix::from_rows(&features),
            labels,
            classes: 2,
            input_bits: 4,
        };
        (baseline, data.clone(), data)
    }

    #[test]
    fn trainer_finds_accurate_small_designs() {
        let (baseline, train, test) = tiny_setup();
        let baseline_acc = baseline.accuracy(&train.features, &train.labels);
        assert!(baseline_acc > 0.9);
        let cfg = AxTrainConfig {
            nsga: NsgaConfig {
                population: 24,
                generations: 25,
                mutation_prob: 0.08,
                seed: 5,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        };
        let trainer = HwAwareTrainer::new(cfg);
        let model = pe_hw::ExactCostModel::new(pe_hw::CostScenario::default());
        let outcome = trainer.train(&baseline, baseline_acc, &train, &test, &model, "tiny");
        assert!(!outcome.front.is_empty());
        let best_acc = outcome
            .front
            .iter()
            .map(|p| p.test_accuracy)
            .fold(0.0f64, f64::max);
        assert!(
            best_acc >= baseline_acc - 0.10,
            "best {best_acc} vs {baseline_acc}"
        );
        assert_eq!(outcome.history.len(), 25);
        assert!(outcome.evaluations > 0);
        // Front is area-sorted.
        for w in outcome.front.windows(2) {
            assert!(w[0].report.area_cm2 <= w[1].report.area_cm2);
        }
    }

    #[test]
    fn genome_spec_mirrors_baseline_topology() {
        let (baseline, _, _) = tiny_setup();
        let trainer = HwAwareTrainer::new(AxTrainConfig::default());
        let spec = trainer.genome_spec_for(&baseline);
        assert_eq!(spec.layers().len(), 1);
        assert_eq!(spec.layers()[0].fan_in, 1);
        assert_eq!(spec.layers()[0].neurons, 2);
        assert_eq!(spec.layers()[0].input_bits, 4);
    }

    #[test]
    fn plain_ga_learns_the_threshold() {
        let (baseline, train, _) = tiny_setup();
        let problem = PlainGaProblem::new(&baseline, &train, None, 8, 8);
        let result = Nsga2::new(NsgaConfig {
            population: 30,
            generations: 30,
            mutation_prob: 0.15,
            seed: 2,
            ..NsgaConfig::default()
        })
        .run(&problem);
        let best = result
            .pareto_front
            .iter()
            .map(|i| 1.0 - i.evaluation.objectives[0])
            .fold(0.0f64, f64::max);
        assert!(best > 0.85, "plain GA accuracy {best}");
    }

    #[test]
    fn plain_ga_decode_round_trips_shape() {
        let (baseline, train, _) = tiny_setup();
        let problem = PlainGaProblem::new(&baseline, &train, Some(4), 8, 8);
        let genes = vec![128u32; problem.bounds().len()];
        let mlp = problem.decode(&genes);
        assert_eq!(mlp.layers.len(), 1);
        assert_eq!(mlp.layers[0].weights.len(), 2);
        assert_eq!(mlp.layers[0].weights[0][0], 0); // 128 - 128
    }
}
