//! `printed-axc` — GA-based, hardware-approximation-aware training for
//! bespoke printed MLPs.
//!
//! This crate is the reproduction of the DATE'24 paper's primary
//! contribution: a discrete, genetic (NSGA-II) training framework that
//! embeds two hardware approximations *into* training —
//!
//! 1. **power-of-two weights** `s·2^k` (multiplier-less neurons), and
//! 2. **fine-grained unstructured pruning** via per-weight bit masks
//!    `m` (hard-wired zeros that delete full adders),
//!
//! and optimizes `min [1 − Accuracy(θ,D), Area(θ)]` (Eq. (3)) where
//! `Area` is the fast FA-count estimate of Eq. (2).
//!
//! Modules follow the paper's Fig. 2 flow:
//!
//! * [`genome`] — the chromosome encoding of Fig. 3 (`m, s, k, b` genes
//!   grouped by weight, neuron, layer).
//! * [`fitness`] — the two-objective evaluation with the 10% accuracy
//!   feasibility bound (and, under a power-budgeted
//!   [`pe_hw::CostScenario`], the power excess) as a
//!   constrained-domination violation; the area/power models are the
//!   fast side of `pe-hw`'s unified cost layer.
//! * [`init`] — semi-random initial populations doped with ~10% nearly
//!   non-approximate (baseline-derived) chromosomes.
//! * [`train`] — the NSGA-II training loop ([`HwAwareTrainer`]) and the
//!   hardware-unaware plain-GA reference of Table III.
//! * [`pareto`] — hardware analysis of the estimated front and
//!   extraction of the true area/accuracy Pareto front.
//! * [`pipeline`] — the staged per-dataset pipeline ([`Study`] →
//!   [`Pipeline`]): five serializable, cacheable, resumable stage
//!   artifacts, progress/cancellation, and parallel multi-dataset runs
//!   ([`Pipeline::run_many`]).
//! * [`engine`] — the [`SearchEngine`] abstraction the pipeline's
//!   search stage runs; implemented here by [`NsgaEngine`] /
//!   [`PlainGaEngine`] and by the three prior-work methods in
//!   `pe-baselines`.
//! * [`eval`] — the shared evaluation core: [`CachedEvaluator`] wraps
//!   any `IntProblem` with a bounded genome memo and a deterministic
//!   thread-pool batch path (results in input order, byte-identical to
//!   serial), and [`thread_budget`] centralizes the `PE_THREADS` knob.
//! * [`checkpoint`] — crash-safe search checkpointing: the pipeline
//!   persists a generation-level GA snapshot (atomically, next to the
//!   `Searched` stage artifact) and resumes a killed or cancelled
//!   search from it, byte-identical to an uninterrupted run.
//! * [`robust`] — Monte-Carlo variation-aware evaluation: the
//!   trial-major extended dataset behind the batched robust fitness
//!   path and the uncached [`robust::mc_accuracy`] reference oracle
//!   (the variation corner itself is [`pe_hw::VariationModel`]).
//! * [`columns`] — the population-level [`NeuronColumnCache`] behind
//!   the columnar fitness engine: hidden/output neuron columns over
//!   the fitness dataset, memoized across the population and threads
//!   with interned layer signatures (bit-exact by construction).
//! * [`store`] — design-store integration over `pe-store`: the
//!   [`StoreSink`] eval hook that persists every unique design a
//!   search encounters (a pure side channel — fronts and artifacts
//!   stay byte-identical), warm-start candidate capture, and scenario
//!   queries ([`store::store_front`] / [`store::select_from_store`])
//!   that reuse this crate's own Pareto selection over stored designs.
//! * [`progress`] / [`error`] — [`ProgressEvent`] + [`CancelToken`]
//!   observability and the [`FlowError`] error surface.
//! * [`flow`] — the [`StudyConfig`] / [`DatasetStudy`] record types of
//!   a complete one-dataset study.
//!
//! # Example
//!
//! ```no_run
//! use pe_datasets::Dataset;
//! use pe_hw::TechLibrary;
//! use printed_axc::{Budget, Study};
//!
//! let pipeline = Study::for_dataset(Dataset::BreastCancer)
//!     .seed(42)
//!     .budget(Budget::Quick)
//!     .tech(TechLibrary::egfet())
//!     .finish()?;
//! let study = pipeline.run_study()?;
//! if let Some(best) = &study.selected {
//!     println!(
//!         "area {:.3} cm² ({}x smaller), accuracy {:.3}",
//!         best.report.area_cm2,
//!         study.area_reduction().unwrap_or(1.0),
//!         best.test_accuracy,
//!     );
//! }
//! # Ok::<(), printed_axc::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod columns;
pub mod config;
pub mod engine;
pub mod error;
pub mod eval;
pub mod fitness;
pub mod flow;
pub mod genome;
pub mod init;
pub mod pareto;
pub mod pipeline;
pub mod progress;
pub mod robust;
pub mod store;
pub mod train;

pub use checkpoint::{checkpoint_every, CheckpointSpec, DEFAULT_CHECKPOINT_EVERY};
pub use columns::{ColumnCacheStats, NeuronColumnCache, ShardStats, DEFAULT_SHARDS};
pub use config::AxTrainConfig;
pub use engine::{
    fingerprint_json, IslandEngine, NsgaEngine, PlainGaEngine, SearchContext, SearchEngine,
    SearchOutcome,
};
pub use error::FlowError;
pub use eval::{thread_budget, CachedEvaluator, EvalCacheStats};
pub use fitness::{AreaObjective, AxTrainProblem};
pub use flow::{islands_from_env, migrate_every_from_env, DatasetStudy, StudyConfig};
pub use genome::{GenomeSpec, LayerGenomeSpec};
pub use init::{doped_seeds, doped_seeds_calibrated, doped_seeds_refined, refine_doped};
pub use pareto::{
    select_within_budgets, select_within_loss, true_pareto_front, DesignCandidate, DesignNetwork,
    DesignPoint,
};
pub use pipeline::{
    derive_seed, BaselineCosted, Budget, EngineFactory, FloatTrained, Pipeline, Prepared,
    RunManyOptions, Searched, Selected, Study, STAGE_CACHE_VERSION,
};
pub use progress::{CancelToken, ProgressEvent, RunControl, StageKind};
pub use robust::{mc_accuracy, RobustSummary};
pub use store::{select_from_store, store_front, StoreSink};
pub use train::{HwAwareTrainer, PlainGaProblem, TrainingOutcome};
