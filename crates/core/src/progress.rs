//! Progress reporting and cooperative cancellation for the staged
//! pipeline.
//!
//! Long-running stages (SGD epochs, GA generations) emit
//! [`ProgressEvent`]s through a [`RunControl`] and poll a
//! [`CancelToken`] between units of work, so interactive frontends can
//! render progress bars and abort studies without killing the process.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::FlowError;

/// The five stages of the staged pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Data generation, stratified split and input quantization.
    Prepared,
    /// Backprop training of the float MLP at the paper's topology.
    FloatTrained,
    /// Quantization to the exact bespoke baseline and its circuit cost.
    BaselineCosted,
    /// The design-space search (NSGA-II by default; any
    /// [`SearchEngine`](crate::engine::SearchEngine)).
    Searched,
    /// Selection of the smallest design within the loss budget.
    Selected,
}

impl StageKind {
    /// All stages, in execution order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Prepared,
        StageKind::FloatTrained,
        StageKind::BaselineCosted,
        StageKind::Searched,
        StageKind::Selected,
    ];

    /// Stable snake-case name (used in cache file names).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Prepared => "prepared",
            StageKind::FloatTrained => "float_trained",
            StageKind::BaselineCosted => "baseline_costed",
            StageKind::Searched => "searched",
            StageKind::Selected => "selected",
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cloneable cancellation flag shared between the caller and a
/// running pipeline. Cancellation is cooperative: stages poll the token
/// at epoch/generation granularity and return
/// [`FlowError::Cancelled`] at the next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; callable from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// One unit of observable pipeline progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A stage began computing.
    StageStarted {
        /// Which stage.
        stage: StageKind,
    },
    /// A stage finished computing.
    StageFinished {
        /// Which stage.
        stage: StageKind,
    },
    /// A stage artifact was loaded from the cache instead of computed.
    StageLoaded {
        /// Which stage.
        stage: StageKind,
    },
    /// One SGD epoch of the float-training stage completed.
    SgdEpoch {
        /// Restart index within the best-of-N loop.
        restart: u64,
        /// 0-based epoch within this restart.
        epoch: usize,
        /// Configured epochs per restart.
        epochs: usize,
    },
    /// One GA generation of the search stage completed.
    GaGeneration {
        /// 0-based generation index.
        generation: usize,
        /// Configured generation budget.
        generations: usize,
        /// Chromosome evaluations so far.
        evaluations: u64,
    },
    /// Cumulative cache counters of the search stage's evaluation
    /// caches — the genome memo ([`crate::eval::CachedEvaluator`]), the
    /// neuron-column cache behind the columnar fitness engine
    /// ([`crate::columns::NeuronColumnCache`]), and the cost layer's
    /// per-neuron gate-count memo (the fast cost model's
    /// memoization) — emitted once per GA generation right after its
    /// [`GaGeneration`](ProgressEvent::GaGeneration) event. Engines
    /// whose problems have no column or cost cache (e.g. the plain GA)
    /// report those counters as zero.
    EvalCache {
        /// Genome evaluations served from the memo so far.
        hits: u64,
        /// Genome evaluations the inner problem actually computed.
        misses: u64,
        /// Genomes currently resident in the memo.
        entries: usize,
        /// Neuron columns served from the column cache so far.
        column_hits: u64,
        /// Neuron columns actually computed by the columnar kernels.
        column_misses: u64,
        /// Neuron columns currently resident in the column cache.
        column_entries: usize,
        /// Column-cache probes that found their shard lock held by
        /// another thread (lock contention, aggregated over shards).
        column_contended: u64,
        /// Shards the column cache is split across.
        column_shards: usize,
        /// Neuron gate-count lookups served from the cost-model memo.
        cost_hits: u64,
        /// Neuron gate-count computations the cost model ran.
        cost_misses: u64,
        /// Unique designs this search has inserted into its design
        /// store (zero when no store is attached).
        store_ingested: u64,
        /// Ingest calls deduplicated against an already-stored design.
        store_deduplicated: u64,
        /// Bytes this search has appended to the design store file.
        store_bytes: u64,
    },
    /// A search checkpoint was persisted to disk (see
    /// [`Study::checkpoint_every`](crate::Study::checkpoint_every)): a
    /// killed or cancelled run can now resume from this generation
    /// instead of generation zero.
    Checkpoint {
        /// Completed generations captured by the checkpoint (1-based).
        generation: usize,
        /// Chromosome evaluations captured by the checkpoint.
        evaluations: u64,
    },
    /// An event from one island of an island-model search (see
    /// [`Study::islands`](crate::Study::islands)), tagged with the
    /// island that produced it. Island workers run concurrently, so
    /// consumers aggregating counters must fold per-island streams
    /// separately instead of diffing the interleaved sequence — the
    /// wrapped [`EvalCache`](ProgressEvent::EvalCache) events carry
    /// only the island's own genome-memo counters (problem-level
    /// counters are shared across islands and reported untagged by the
    /// coordinator).
    Island {
        /// 0-based island index.
        island: usize,
        /// The island-local event (`GaGeneration`, `EvalCache`,
        /// `Checkpoint`, or `Migration`).
        event: Box<ProgressEvent>,
    },
    /// One ring-migration epoch of an island-model search completed:
    /// every island reached the barrier generation and exchanged
    /// elites.
    Migration {
        /// The barrier generation (1-based completed generations).
        generation: usize,
        /// Elites each island emitted this epoch.
        migrants: usize,
    },
}

/// A shared, thread-safe progress observer (what
/// [`Study::progress`](crate::Study::progress) stores).
pub type ProgressObserver = std::sync::Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Borrowed observer + cancellation pair threaded through stage code
/// and [`SearchEngine`](crate::engine::SearchEngine) implementations.
///
/// The no-op value [`RunControl::NONE`] never reports and never
/// cancels, so library code can unconditionally thread a control.
#[derive(Clone, Copy, Default)]
pub struct RunControl<'a> {
    progress: Option<&'a (dyn Fn(&ProgressEvent) + Sync)>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> RunControl<'a> {
    /// A control that never reports progress and never cancels.
    pub const NONE: RunControl<'static> = RunControl {
        progress: None,
        cancel: None,
    };

    /// Build a control from optional parts.
    #[must_use]
    pub fn new(
        progress: Option<&'a (dyn Fn(&ProgressEvent) + Sync)>,
        cancel: Option<&'a CancelToken>,
    ) -> Self {
        Self { progress, cancel }
    }

    /// Report one progress event (no-op without an observer).
    pub fn emit(&self, event: &ProgressEvent) {
        if let Some(observer) = self.progress {
            observer(event);
        }
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Checkpoint: `Err(FlowError::Cancelled)` if cancellation was
    /// requested, attributing the abort to `stage`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] when the token is set.
    pub fn ensure_live(&self, stage: StageKind) -> Result<(), FlowError> {
        if self.is_cancelled() {
            Err(FlowError::Cancelled { stage })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("progress", &self.progress.is_some())
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_once_for_all_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn none_control_never_cancels() {
        assert!(!RunControl::NONE.is_cancelled());
        assert!(RunControl::NONE.ensure_live(StageKind::Searched).is_ok());
        RunControl::NONE.emit(&ProgressEvent::StageStarted {
            stage: StageKind::Prepared,
        });
    }

    #[test]
    fn control_reports_and_checkpoints() {
        use std::sync::Mutex;
        let events: Mutex<Vec<ProgressEvent>> = Mutex::new(Vec::new());
        let observer = |e: &ProgressEvent| events.lock().expect("unpoisoned").push(e.clone());
        let token = CancelToken::new();
        let ctl = RunControl::new(Some(&observer), Some(&token));
        ctl.emit(&ProgressEvent::StageStarted {
            stage: StageKind::Prepared,
        });
        assert!(ctl.ensure_live(StageKind::Prepared).is_ok());
        token.cancel();
        assert_eq!(
            ctl.ensure_live(StageKind::Searched),
            Err(FlowError::Cancelled {
                stage: StageKind::Searched
            })
        );
        assert_eq!(events.lock().expect("unpoisoned").len(), 1);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = StageKind::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "prepared",
                "float_trained",
                "baseline_costed",
                "searched",
                "selected"
            ]
        );
    }
}
