//! The generic search-engine interface of the staged pipeline.
//!
//! A [`SearchEngine`] takes the objectives — the prepared data, the
//! exact baseline that anchors the accuracy budget, and the technology
//! model — and returns a front of evaluated [`DesignPoint`]s. The
//! DATE'24 NSGA-II flow, the hardware-unaware plain GA (Table III) and
//! the three `pe-baselines` prior-work methods all implement it, so
//! experiment code iterates engines generically instead of hand-wiring
//! each one.

use std::time::Instant;

use pe_datasets::{Dataset, QuantizedData, TabularData};
use pe_hw::{CostModel, CostScenario, Elaborator, TechLibrary};
use pe_mlp::{fixed_to_hardware, DenseMlp, FixedMlp};
use pe_nsga::{Nsga2, NsgaConfig};

use crate::config::AxTrainConfig;
use crate::error::FlowError;
use crate::pareto::{DesignNetwork, DesignPoint};
use crate::progress::{RunControl, StageKind};
use crate::train::{HwAwareTrainer, PlainGaProblem};

/// Everything a search run produces; re-exported name for
/// [`TrainingOutcome`](crate::train::TrainingOutcome) in its role as
/// the [`SearchEngine`] contract. The `front` field is the engine's
/// deliverable: the evaluated designs, ascending in area.
pub use crate::train::TrainingOutcome as SearchOutcome;

/// The inputs every engine searches against: one dataset's prepared
/// splits, the float and exact-baseline lineage, and the shared cost
/// model. Borrowed from the pipeline's stage artifacts (see
/// [`BaselineCosted::search_context`](crate::pipeline::BaselineCosted::search_context)).
#[derive(Clone, Copy)]
pub struct SearchContext<'a> {
    /// Which dataset is being searched.
    pub dataset: Dataset,
    /// Circuit-name prefix (the dataset's display name).
    pub name: &'a str,
    /// Number of classes.
    pub classes: usize,
    /// The exact bespoke baseline network.
    pub baseline: &'a FixedMlp,
    /// Baseline accuracy on the quantized training split (anchors the
    /// training-time feasibility bound).
    pub baseline_train_accuracy: f64,
    /// Baseline accuracy on the quantized test split (anchors the
    /// reporting loss budget).
    pub baseline_test_accuracy: f64,
    /// Quantized training split.
    pub train: &'a QuantizedData,
    /// Quantized test split.
    pub test: &'a QuantizedData,
    /// The float network the baseline was quantized from (used by
    /// engines that start from the float model, e.g. stochastic
    /// computing).
    pub float_mlp: &'a DenseMlp,
    /// Normalized float training split.
    pub float_train: &'a TabularData,
    /// Normalized float test split.
    pub float_test: &'a TabularData,
    /// The cost scenario the study runs under: technology, Vdd model,
    /// operating supply and the optional power budget. Engines must
    /// report their designs under these conditions — with one carve-out:
    /// an engine whose *method* is defined by its own operating voltage
    /// (the TCAD'23 voltage-over-scaling search) reports at the voltage
    /// its search selects, since pinning it to the scenario supply
    /// would misrepresent the prior work being reproduced.
    pub scenario: &'a CostScenario,
    /// The study's cost model at [`scenario`](Self::scenario) — the
    /// single costing interface all engines report through.
    pub cost: &'a dyn CostModel,
    /// A circuit elaborator over the scenario's technology (for
    /// engines that need netlists or custom voltage loops, e.g. the
    /// TCAD'23 voltage-over-scaling search).
    pub elaborator: &'a Elaborator,
    /// The reporting accuracy-loss budget (5% in the paper).
    pub loss_budget: f64,
    /// Worker budget for the engine's within-study batch evaluation
    /// (see [`crate::eval`]).
    /// [`Pipeline::run_many`](crate::Pipeline::run_many) divides the
    /// global
    /// [`thread_budget`](crate::eval::thread_budget) across its
    /// concurrent dataset workers, so the two pool levels multiply to
    /// the budget instead of oversubscribing it. Thread count never
    /// affects results.
    pub eval_threads: usize,
    /// Monte-Carlo variation request of a robust study
    /// ([`StudyConfig::variation`](crate::flow::StudyConfig)). `None`
    /// — the default every
    /// [`search_context`](crate::pipeline::BaselineCosted::search_context)
    /// starts from — keeps every engine's nominal behavior bit for
    /// bit; the GA engines under `Some` optimize the robust statistic
    /// instead of nominal accuracy. Engines that don't understand
    /// variation simply ignore it (their fronts are then evaluated
    /// under variation downstream, e.g. by the `fig_robust` bench).
    pub variation: Option<&'a pe_hw::VariationConfig>,
    /// Design-store sink of a store-enabled study
    /// ([`Study::design_store`](crate::Study::design_store)). `None` —
    /// the default every
    /// [`search_context`](crate::pipeline::BaselineCosted::search_context)
    /// starts from — runs storeless. Ingest is a pure side channel
    /// (fronts are byte-identical either way); engines that don't
    /// understand stores simply ignore it.
    pub store: Option<&'a crate::store::StoreSink>,
    /// Crash-safety checkpoint request
    /// ([`Study::checkpoint_every`](crate::Study::checkpoint_every)).
    /// `None` — the default every
    /// [`search_context`](crate::pipeline::BaselineCosted::search_context)
    /// starts from — runs without durability, exactly as before.
    /// Checkpointing never steers the search: a resumed run is
    /// byte-identical to an uninterrupted one, so engines that ignore
    /// this field are merely not crash-safe, never wrong.
    pub checkpoint: Option<&'a crate::checkpoint::CheckpointSpec>,
}

impl SearchContext<'_> {
    /// The technology library costs are reported in (the scenario's).
    #[must_use]
    pub fn tech(&self) -> &TechLibrary {
        &self.scenario.tech
    }
}

impl std::fmt::Debug for SearchContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("dataset", &self.dataset)
            .field("scenario", &self.scenario.label())
            .field("cost_model", &self.cost.name())
            .field("loss_budget", &self.loss_budget)
            .field("eval_threads", &self.eval_threads)
            .field("variation", &self.variation)
            .field("store", &self.store)
            .field("checkpoint", &self.checkpoint)
            .finish_non_exhaustive()
    }
}

/// A design-space search strategy: objectives in, evaluated
/// [`DesignPoint`]s out (as `SearchOutcome::front`).
///
/// Implementations must be deterministic in their configuration plus
/// the context (wall-clock fields excepted), so cached `Searched`
/// stages and parallel [`run_many`](crate::pipeline::Pipeline::run_many)
/// runs reproduce sequential ones.
pub trait SearchEngine {
    /// Short stable identifier (used in cache keys and reports).
    fn name(&self) -> &'static str;

    /// A stable hash of this engine's own configuration, mixed into the
    /// pipeline's stage-cache key alongside [`name`](Self::name) so
    /// differently-configured engines never alias each other's cached
    /// `Searched`/`Selected` artifacts. Engines whose behavior is fully
    /// determined by their name may keep the default (`0`); engines
    /// with configuration should hash it (see [`fingerprint_json`]).
    fn cache_fingerprint(&self) -> u64 {
        0
    }

    /// Search the design space described by `ctx`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`] when `ctl` reports cancellation at a
    /// checkpoint; [`FlowError::Engine`] for engine-specific failures.
    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError>;
}

/// FNV-1a hash of a value's JSON serialization: the standard way to
/// implement [`SearchEngine::cache_fingerprint`] for an engine with a
/// serializable configuration.
#[must_use]
pub fn fingerprint_json<T: serde::Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).unwrap_or_default();
    crate::pipeline::fnv1a64(json.as_bytes())
}

/// The paper's engine: hardware-approximation-aware NSGA-II training
/// ([`HwAwareTrainer`]) over the `(m, s, k, b)` chromosome.
#[derive(Debug, Clone, Default)]
pub struct NsgaEngine {
    /// GA training configuration.
    pub config: AxTrainConfig,
}

impl NsgaEngine {
    /// Engine with the given configuration.
    #[must_use]
    pub fn new(config: AxTrainConfig) -> Self {
        Self { config }
    }
}

impl SearchEngine for NsgaEngine {
    fn name(&self) -> &'static str {
        "nsga2-axc"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&self.config)
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        HwAwareTrainer::new(self.config.clone())
            .with_eval_threads(ctx.eval_threads)
            .with_variation(ctx.variation.copied())
            .with_store(ctx.store.cloned())
            .with_checkpoint(ctx.checkpoint.cloned())
            .train_controlled(
                ctx.baseline,
                ctx.baseline_train_accuracy,
                ctx.train,
                ctx.test,
                ctx.cost,
                ctx.name,
                ctl,
            )
    }
}

/// The island-model variant of [`NsgaEngine`]: the same
/// hardware-aware training flow with the GA loop replaced by an
/// N-island archipelago (see [`pe_nsga::IslandModel`] and
/// `crate::eval::run_ga_islands`'s two-level thread split). Same
/// evaluation budget, byte-identical results at any worker count;
/// selected by the pipeline whenever
/// [`Study::islands`](crate::Study::islands) (or `PE_ISLANDS` via
/// [`StudyConfig`](crate::flow::StudyConfig)) asks for ≥ 2 islands.
#[derive(Debug, Clone)]
pub struct IslandEngine {
    /// GA training configuration (the total budget).
    pub config: AxTrainConfig,
    /// Number of islands (≥ 2 — a single island *is* [`NsgaEngine`];
    /// the pipeline keeps that path, and its cache keys, unchanged).
    pub islands: usize,
    /// Migration cadence in completed generations.
    pub migration_every: usize,
    /// Elites each island emits per migration epoch.
    pub migrants: usize,
}

impl IslandEngine {
    /// Engine with the given configuration and topology.
    #[must_use]
    pub fn new(
        config: AxTrainConfig,
        islands: usize,
        migration_every: usize,
        migrants: usize,
    ) -> Self {
        Self {
            config,
            islands,
            migration_every,
            migrants,
        }
    }

    /// The [`pe_nsga::IslandConfig`] this engine trains under.
    #[must_use]
    pub fn topology(&self) -> pe_nsga::IslandConfig {
        pe_nsga::IslandConfig {
            nsga: self.config.nsga.clone(),
            islands: self.islands,
            migration_every: self.migration_every,
            migrants: self.migrants,
        }
    }
}

impl SearchEngine for IslandEngine {
    fn name(&self) -> &'static str {
        "nsga2-axc-islands"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&(
            &self.config,
            self.islands,
            self.migration_every,
            self.migrants,
        ))
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        HwAwareTrainer::new(self.config.clone())
            .with_eval_threads(ctx.eval_threads)
            .with_variation(ctx.variation.copied())
            .with_store(ctx.store.cloned())
            .with_checkpoint(ctx.checkpoint.cloned())
            .with_islands(Some(self.topology()))
            .train_controlled(
                ctx.baseline,
                ctx.baseline_train_accuracy,
                ctx.train,
                ctx.test,
                ctx.cost,
                ctx.name,
                ctl,
            )
    }
}

/// The hardware-unaware GA reference of Table III: the same NSGA-II
/// loop over the plain 8-bit weight/bias chromosome with accuracy as
/// the only objective (no approximations trained).
#[derive(Debug, Clone)]
pub struct PlainGaEngine {
    /// Weight gene width in bits.
    pub weight_bits: u32,
    /// Bias gene width in bits.
    pub bias_bits: u32,
    /// Fitness subsample cap (`None` = all training rows).
    pub subsample: Option<usize>,
    /// NSGA-II settings.
    pub nsga: NsgaConfig,
}

impl PlainGaEngine {
    /// Engine matching the paper's Table III reference setup.
    #[must_use]
    pub fn new(nsga: NsgaConfig, subsample: Option<usize>) -> Self {
        Self {
            weight_bits: 8,
            bias_bits: 12,
            subsample,
            nsga,
        }
    }
}

impl SearchEngine for PlainGaEngine {
    fn name(&self) -> &'static str {
        "plain-ga"
    }

    fn cache_fingerprint(&self) -> u64 {
        fingerprint_json(&(self.weight_bits, self.bias_bits, self.subsample, &self.nsga))
    }

    fn search(
        &self,
        ctx: &SearchContext<'_>,
        ctl: &RunControl<'_>,
    ) -> Result<SearchOutcome, FlowError> {
        ctl.ensure_live(StageKind::Searched)?;
        let problem = PlainGaProblem::new(
            ctx.baseline,
            ctx.train,
            self.subsample,
            self.weight_bits,
            self.bias_bits,
        );
        let mut history = Vec::with_capacity(self.nsga.generations);
        let started = Instant::now();
        let result = crate::eval::run_ga_cached(
            &Nsga2::new(self.nsga.clone()),
            &problem,
            Vec::new(),
            ctx.eval_threads,
            ctl,
            &mut history,
            &|| None,
            ctx.checkpoint,
        );
        let ga_wall = started.elapsed();
        ctl.ensure_live(StageKind::Searched)?;

        // Accuracy is the only objective, so the "front" is the single
        // best individual, evaluated in hardware like any other design.
        let front = result
            .pareto_front
            .iter()
            .min_by(|a, b| a.evaluation.objectives[0].total_cmp(&b.evaluation.objectives[0]))
            .map(|best| {
                let mlp = problem.decode(&best.genes);
                let report = ctx
                    .cost
                    .report(&fixed_to_hardware(&mlp, format!("{}_plain_ga", ctx.name)));
                let trunc_bits = vec![0; mlp.layers.len()];
                DesignPoint {
                    network: DesignNetwork::Truncated {
                        mlp: mlp.clone(),
                        trunc_bits,
                    },
                    train_accuracy: 1.0 - best.evaluation.objectives[0],
                    test_accuracy: mlp.accuracy(&ctx.test.features, &ctx.test.labels),
                    estimated_area: report.area_cm2,
                    report,
                }
            })
            .into_iter()
            .collect();

        Ok(SearchOutcome {
            front,
            estimated_front: Vec::new(),
            history,
            evaluations: result.evaluations,
            ga_wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Study;
    use crate::progress::CancelToken;
    use pe_datasets::Dataset;

    fn tiny_context_stage() -> crate::pipeline::BaselineCosted {
        let pipeline = Study::for_dataset(Dataset::BreastCancer)
            .config(crate::flow::StudyConfig {
                sgd_epochs_scale: 0.05,
                ..crate::flow::StudyConfig::quick(3)
            })
            .tech(TechLibrary::egfet())
            .finish()
            .expect("valid config");
        let prepared = pipeline.prepare().expect("prepare");
        let float = pipeline.train_float(prepared).expect("train");
        pipeline.cost_baseline(float).expect("cost")
    }

    #[test]
    fn plain_ga_engine_returns_an_evaluated_design() {
        let costed = tiny_context_stage();
        let model = pe_hw::ExactCostModel::new(CostScenario::default());
        let ctx = costed.search_context(&model, 0.05);
        let engine = PlainGaEngine::new(
            NsgaConfig {
                population: 12,
                generations: 5,
                ..NsgaConfig::default()
            },
            Some(200),
        );
        let outcome = engine
            .search(&ctx, &RunControl::NONE)
            .expect("uncancelled search succeeds");
        assert_eq!(outcome.front.len(), 1);
        assert_eq!(outcome.history.len(), 5);
        assert!(outcome.front[0].report.area_cm2 > 0.0);
        assert!(outcome.front[0].network.ax().is_none());
    }

    #[test]
    fn engines_honor_cancellation() {
        let costed = tiny_context_stage();
        let model = pe_hw::ExactCostModel::new(CostScenario::default());
        let ctx = costed.search_context(&model, 0.05);
        let token = CancelToken::new();
        token.cancel();
        let ctl = RunControl::new(None, Some(&token));
        let nsga = NsgaEngine::default();
        assert_eq!(
            nsga.search(&ctx, &ctl),
            Err(FlowError::Cancelled {
                stage: StageKind::Searched
            })
        );
    }
}
