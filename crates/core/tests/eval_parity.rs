//! Properties of the evaluation core: a parallel, memoized
//! [`CachedEvaluator`] must be observationally identical to a plain
//! serial `IntProblem::evaluate` loop, and cache hits must never change
//! NSGA-II's reported `evaluations` semantics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pe_nsga::{random_genome, Evaluation, IntProblem, Nsga2, NsgaConfig};
use printed_axc::eval::CachedEvaluator;

/// A cheap, deterministic two-objective problem with a constraint —
/// structurally the same shape as the GA fitness (feasible/infeasible
/// split, two minimized objectives) without the MLP cost.
struct Surrogate {
    bounds: Vec<u32>,
}

impl Surrogate {
    fn new(genes: usize, bound: u32) -> Self {
        Self {
            bounds: vec![bound.max(2); genes],
        }
    }
}

impl IntProblem for Surrogate {
    fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        let weighted: f64 = genes
            .iter()
            .enumerate()
            .map(|(i, &g)| f64::from(g) * ((i % 7) as f64 + 1.0))
            .sum();
        let spread = genes
            .iter()
            .map(|&g| f64::from(g) - f64::from(self.bounds[0]) / 2.0)
            .map(|d| d * d)
            .sum::<f64>();
        let objectives = vec![weighted, spread];
        if weighted < 3.0 {
            Evaluation::infeasible(objectives, 3.0 - weighted)
        } else {
            Evaluation::feasible(objectives)
        }
    }
}

/// A random population over the problem's bounds, with deliberate
/// duplicates (elitist GAs resubmit identical genomes constantly).
fn random_population(problem: &Surrogate, size: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pop: Vec<Vec<u32>> = (0..size)
        .map(|_| random_genome(problem.bounds(), &mut rng))
        .collect();
    // Duplicate roughly a third of the genomes.
    for i in 0..size / 3 {
        let src = pop[i].clone();
        pop[size - 1 - i] = src;
    }
    pop
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel, cached evaluator agrees with a plain serial
    /// `evaluate` loop on every genome of a random population — cold
    /// cache, warm cache, any thread count, any (even tiny) capacity.
    #[test]
    fn cached_parallel_evaluator_matches_serial_loop(
        seed in any::<u64>(),
        genes in 1usize..24,
        bound in 2u32..40,
        size in 1usize..60,
        threads in 1usize..6,
        capacity in 1usize..64,
    ) {
        let problem = Surrogate::new(genes, bound);
        let pop = random_population(&problem, size, seed);
        let serial: Vec<Evaluation> = pop.iter().map(|g| problem.evaluate(g)).collect();

        let evaluator = CachedEvaluator::with_options(&problem, capacity, threads);
        prop_assert_eq!(evaluator.evaluate_batch(&pop), serial.clone()); // cold
        prop_assert_eq!(evaluator.evaluate_batch(&pop), serial.clone()); // warm
        // Single-genome path agrees too.
        prop_assert_eq!(evaluator.evaluate(&pop[0]), serial[0].clone());
        // Accounting: hits + misses covers every requested evaluation
        // (a tiny capacity may evict and recompute, but never miscount).
        let stats = evaluator.stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * size as u64 + 1);

        // With ample capacity, the inner problem computes each unique
        // genome exactly once across both passes.
        let unique: std::collections::HashSet<&[u32]> =
            pop.iter().map(Vec::as_slice).collect();
        let roomy = CachedEvaluator::with_options(&problem, size.max(1) * 2, threads);
        prop_assert_eq!(roomy.evaluate_batch(&pop), serial.clone());
        prop_assert_eq!(roomy.evaluate_batch(&pop), serial);
        let stats = roomy.stats();
        prop_assert_eq!(stats.misses, unique.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, 2 * size as u64);
    }

    /// NSGA-II runs identically — same fronts, same populations, and
    /// the same `evaluations` count — whether the problem is raw or
    /// wrapped in a parallel `CachedEvaluator`: the count reports
    /// requested candidate evaluations, never the (smaller) number of
    /// inner computations after cache hits.
    #[test]
    fn nsga_semantics_survive_caching(
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let problem = Surrogate::new(4, 16);
        let cfg = NsgaConfig {
            population: 12,
            generations: 8,
            seed,
            ..NsgaConfig::default()
        };
        let plain = Nsga2::new(cfg.clone()).run(&problem);
        let evaluator = CachedEvaluator::with_options(&problem, 1 << 10, threads);
        let cached = Nsga2::new(cfg).run(&evaluator);

        prop_assert_eq!(&cached.population, &plain.population);
        prop_assert_eq!(&cached.pareto_front, &plain.pareto_front);
        prop_assert_eq!(cached.evaluations, plain.evaluations);
        prop_assert_eq!(plain.evaluations, 12 + 8 * 12);
        // The memo did real work: the inner problem computed fewer
        // evaluations than were requested (elitism re-submits genomes),
        // and the ledger still adds up.
        let stats = evaluator.stats();
        prop_assert_eq!(stats.hits + stats.misses, cached.evaluations);
        prop_assert!(stats.misses <= cached.evaluations);
    }
}
