//! The sharded neuron-column cache is semantically transparent: a
//! search run against a 1-shard, 4-shard or 16-shard cache — serial or
//! through the parallel batch evaluator — produces **byte-identical**
//! search artifacts (serialized populations, fronts and evaluation
//! counts), because sharding only changes which lock guards a column,
//! never what the column holds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pe_mlp::{QReluCfg, QuantMatrix};
use pe_nsga::{random_genome, Evaluation, IntProblem, Nsga2, NsgaConfig};
use printed_axc::eval::CachedEvaluator;
use printed_axc::{AxTrainProblem, GenomeSpec, LayerGenomeSpec};

/// Every shard count under test (the clamp rounds up to powers of two,
/// so these exercise the single-lock degenerate case, the default
/// neighborhood and a wide split).
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// A small two-hidden-layer problem over a deterministic dataset.
fn problem(shards: usize) -> AxTrainProblem {
    let qrelu = QReluCfg {
        out_bits: 5,
        shift: 1,
    };
    let spec = GenomeSpec::new(
        vec![
            LayerGenomeSpec {
                fan_in: 3,
                neurons: 4,
                input_bits: 4,
                qrelu: Some(qrelu),
            },
            LayerGenomeSpec {
                fan_in: 4,
                neurons: 3,
                input_bits: qrelu.out_bits,
                qrelu: Some(qrelu),
            },
            LayerGenomeSpec {
                fan_in: 3,
                neurons: 3,
                input_bits: qrelu.out_bits,
                qrelu: None,
            },
        ],
        6,
        8,
    );
    let rows: Vec<Vec<u8>> = (0..48u8)
        .map(|v| vec![v & 0xF, v.wrapping_mul(7) & 0xF, v.wrapping_mul(3) & 0xF])
        .collect();
    let labels: Vec<usize> = (0..48).map(|v| v % 3).collect();
    AxTrainProblem::new(spec, QuantMatrix::from_rows(&rows), labels, 0.8, 0.2)
        .with_column_shards(shards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A full NSGA-II search serializes byte-identically at every
    /// shard count, and the per-shard counters always reconcile with
    /// the aggregate stats.
    #[test]
    fn searched_artifacts_are_byte_identical_across_shard_counts(seed in any::<u64>()) {
        let cfg = NsgaConfig {
            population: 8,
            generations: 5,
            seed,
            ..NsgaConfig::default()
        };
        let mut reference: Option<String> = None;
        for shards in SHARD_COUNTS {
            let problem = problem(shards);
            let outcome = Nsga2::new(cfg.clone()).run(&problem);
            let stats = problem.column_cache_stats();
            prop_assert_eq!(stats.shards, shards);
            let artifact = serde_json::to_string(&(
                &outcome.population,
                &outcome.pareto_front,
                outcome.evaluations,
            ))
            .expect("search artifacts serialize");
            match &reference {
                None => reference = Some(artifact),
                Some(want) => prop_assert_eq!(
                    want,
                    &artifact,
                    "{} shards diverged from {} shards",
                    shards,
                    SHARD_COUNTS[0]
                ),
            }
        }
    }

    /// The parallel batch evaluator sees the same transparency: any
    /// shard count × any worker count reproduces the serial
    /// single-shard evaluations exactly.
    #[test]
    fn batch_evaluations_match_across_shards_and_threads(
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let serial = problem(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let pop: Vec<Vec<u32>> = (0..12)
            .map(|_| random_genome(serial.bounds(), &mut rng))
            .collect();
        let expected: Vec<Evaluation> = pop.iter().map(|g| serial.evaluate(g)).collect();
        for shards in SHARD_COUNTS {
            let sharded = problem(shards);
            let evaluator = CachedEvaluator::with_options(&sharded, 64, threads);
            prop_assert_eq!(evaluator.evaluate_batch(&pop), expected.clone()); // cold
            prop_assert_eq!(evaluator.evaluate_batch(&pop), expected.clone()); // warm
        }
    }
}
