//! Parity properties of the columnar fitness engine: for random
//! genomes × random [`QuantMatrix`] datasets, the cached columnar path
//! behind [`AxTrainProblem`]'s `evaluate`/`evaluate_batch`/`score` must
//! be **bit-exact** with the per-row reference oracle
//! (`score_with`, i.e. one `predict_with` per sample), and an NSGA-II
//! run on the columnar path must preserve fronts, populations and the
//! `evaluations` count versus the serial row-oracle problem.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pe_mlp::columnar::accuracy_columns;
use pe_mlp::{InferenceScratch, QReluCfg, QuantMatrix};
use pe_nsga::{random_genome, Evaluation, IntProblem, Nsga2, NsgaConfig};
use printed_axc::{AreaObjective, AxTrainProblem, GenomeSpec, LayerGenomeSpec};

/// The row-major reference problem: identical feasibility formula, but
/// scoring goes through the per-row oracle instead of the columnar
/// engine.
struct RowOracle<'a> {
    problem: &'a AxTrainProblem,
}

impl IntProblem for RowOracle<'_> {
    fn bounds(&self) -> &[u32] {
        self.problem.bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        let mlp = self.problem.genome_spec().decode(genes);
        let (accuracy, area) = self.problem.score_with(&mlp, &mut InferenceScratch::new());
        self.problem.evaluation_of(accuracy, area)
    }
}

/// Build a (spec, dataset, labels) triple from raw random material:
/// a one- or two-hidden-layer genome spec whose first fan-in matches
/// the dataset width, and samples masked into the input range.
fn build_case(
    width: usize,
    input_bits: u32,
    hidden: usize,
    classes: usize,
    deep: bool,
    raw_rows: &[Vec<u8>],
    raw_labels: &[usize],
) -> (GenomeSpec, QuantMatrix, Vec<usize>) {
    let qrelu = QReluCfg {
        out_bits: 5,
        shift: 1,
    };
    let mut layers = vec![LayerGenomeSpec {
        fan_in: width,
        neurons: hidden,
        input_bits,
        qrelu: Some(qrelu),
    }];
    if deep {
        layers.push(LayerGenomeSpec {
            fan_in: hidden,
            neurons: hidden,
            input_bits: qrelu.out_bits,
            qrelu: Some(qrelu),
        });
    }
    layers.push(LayerGenomeSpec {
        fan_in: hidden,
        neurons: classes,
        input_bits: qrelu.out_bits,
        qrelu: None,
    });
    let spec = GenomeSpec::new(layers, 6, 8);
    let mask = ((1u16 << input_bits) - 1) as u8;
    let rows: Vec<Vec<u8>> = raw_rows
        .iter()
        .map(|r| (0..width).map(|f| r[f % r.len()] & mask).collect())
        .collect();
    let labels: Vec<usize> = raw_labels.iter().map(|&l| l % classes).collect();
    (spec, QuantMatrix::from_rows(&rows), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Columnar ≡ per-row scoring, exactly: objectives, feasibility and
    /// violations of `evaluate`, `evaluate_batch` and `score` all match
    /// the row oracle bit for bit, for random genomes over random
    /// datasets — including repeated evaluations that hit the neuron
    /// column cache.
    #[test]
    fn columnar_scoring_is_bit_exact_with_the_row_oracle(
        seed in any::<u64>(),
        width in 1usize..5,
        input_bits in 2u32..5,
        hidden in 1usize..4,
        classes in 2usize..4,
        // Bit 0: two hidden layers; bit 1: FA-count objective.
        variant in 0u8..4,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..6), 1..30),
        raw_labels in proptest::collection::vec(0usize..64, 30),
    ) {
        let deep = variant & 1 != 0;
        let (spec, rows, labels) = build_case(
            width, input_bits, hidden, classes, deep, &raw_rows,
            &raw_labels[..raw_rows.len()],
        );
        let objective = if variant & 2 == 0 {
            AreaObjective::GateEquivalents
        } else {
            AreaObjective::FaCount
        };
        let problem = AxTrainProblem::new(spec, rows.clone(), labels.clone(), 0.9, 0.1)
            .with_objective(objective);
        let oracle = RowOracle { problem: &problem };

        let mut rng = StdRng::seed_from_u64(seed);
        let pop: Vec<Vec<u32>> = (0..8)
            .map(|_| random_genome(problem.bounds(), &mut rng))
            .collect();

        let expected: Vec<Evaluation> = pop.iter().map(|g| oracle.evaluate(g)).collect();
        for (genes, want) in pop.iter().zip(&expected) {
            prop_assert_eq!(&problem.evaluate(genes), want); // cold columns
            prop_assert_eq!(&problem.evaluate(genes), want); // warm columns
        }
        // The native batch path agrees too (and reuses warm columns).
        prop_assert_eq!(problem.evaluate_batch(&pop), expected);

        // `score` (columnar) ≡ `score_with` (row oracle) ≡ the
        // standalone columnar kernel in pe-mlp.
        let mlp = problem.genome_spec().decode(&pop[0]);
        let (acc_col, area_col) = problem.score(&mlp);
        let (acc_row, area_row) =
            problem.score_with(&mlp, &mut InferenceScratch::new());
        prop_assert_eq!(acc_col.to_bits(), acc_row.to_bits());
        prop_assert_eq!(area_col.to_bits(), area_row.to_bits());
        prop_assert_eq!(
            accuracy_columns(&mlp, &rows.columns(), &labels).to_bits(),
            acc_row.to_bits()
        );
        // The cache did real work on the repeated lookups above.
        let stats = problem.column_cache_stats();
        prop_assert!(stats.hits > 0);
    }

    /// An NSGA-II run whose fitness goes through the columnar cached
    /// path reproduces the serial row-oracle run exactly: same final
    /// population, same Pareto front, same `evaluations` count —
    /// caching changes how much work is re-done, never the semantics.
    #[test]
    fn nsga_run_on_the_columnar_path_preserves_fronts_and_counts(
        seed in any::<u64>(),
        deep in any::<bool>(),
    ) {
        let raw_rows: Vec<Vec<u8>> = (0..24u8).map(|v| vec![v, v.wrapping_mul(7)]).collect();
        let raw_labels: Vec<usize> = (0..24).map(|v| v % 3).collect();
        let (spec, rows, labels) =
            build_case(2, 4, 3, 3, deep, &raw_rows, &raw_labels);
        let problem = AxTrainProblem::new(spec, rows, labels, 0.8, 0.2);
        let oracle = RowOracle { problem: &problem };

        let cfg = NsgaConfig {
            population: 10,
            generations: 6,
            seed,
            ..NsgaConfig::default()
        };
        let columnar = Nsga2::new(cfg.clone()).run(&problem);
        let rowwise = Nsga2::new(cfg).run(&oracle);

        prop_assert_eq!(&columnar.population, &rowwise.population);
        prop_assert_eq!(&columnar.pareto_front, &rowwise.pareto_front);
        prop_assert_eq!(columnar.evaluations, rowwise.evaluations);
        prop_assert_eq!(columnar.evaluations, 10 + 6 * 10);
    }
}
