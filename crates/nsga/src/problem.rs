//! Problem abstraction for the NSGA-II optimizer.

use serde::{Deserialize, Serialize};

/// Result of evaluating one candidate: objective values (all minimized)
/// plus an aggregate constraint violation (0 = feasible).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective values, all to be minimized.
    pub objectives: Vec<f64>,
    /// Total constraint violation; 0.0 means feasible. Infeasible
    /// candidates are handled by Deb's constrained-domination rule.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation.
    #[must_use]
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Self {
            objectives,
            violation: 0.0,
        }
    }

    /// An evaluation with a constraint violation.
    #[must_use]
    pub fn infeasible(objectives: Vec<f64>, violation: f64) -> Self {
        debug_assert!(violation > 0.0);
        Self {
            objectives,
            violation,
        }
    }

    /// Whether the candidate satisfies all constraints.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }
}

/// A multi-objective problem over bounded integer-vector genomes.
///
/// Genomes are `Vec<u32>` with per-gene exclusive upper bounds — the
/// natural encoding for the paper's chromosome of masks, signs, shift
/// exponents and quantized biases (each gene "represented by an integer
/// value (with the corresponding limits)", §IV-B).
pub trait IntProblem {
    /// Exclusive upper bound of each gene: gene `i` ranges over
    /// `0..bounds()[i]`. The genome length is `bounds().len()`.
    fn bounds(&self) -> &[u32];

    /// Evaluate a genome.
    ///
    /// Evaluation must be a pure, deterministic function of the genes:
    /// the optimizer is free to reorder, parallelize or memoize calls
    /// (see [`evaluate_batch`](Self::evaluate_batch)) without changing
    /// results.
    fn evaluate(&self, genes: &[u32]) -> Evaluation;

    /// Evaluate a whole wave of genomes, returning one [`Evaluation`]
    /// per genome **in input order**.
    ///
    /// The default implementation is a plain serial loop over
    /// [`evaluate`](Self::evaluate); implementations with a faster
    /// bulk path (thread-pool fan-out, memoization, vectorized
    /// inference) override it. [`Nsga2`](crate::Nsga2) funnels the
    /// initial population and every offspring wave through this single
    /// entry point, so an override accelerates the whole run.
    fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// Any reference to a problem is itself a problem, so wrappers (e.g. a
/// caching evaluator) can borrow rather than own their inner problem.
impl<T: IntProblem + ?Sized> IntProblem for &T {
    fn bounds(&self) -> &[u32] {
        (**self).bounds()
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        (**self).evaluate(genes)
    }

    fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(genomes)
    }
}

/// Deb's constrained-domination: `a` dominates `b` iff
/// * `a` is feasible and `b` is not, or
/// * both are infeasible and `a` violates less, or
/// * both are feasible and `a` Pareto-dominates `b`.
///
/// # Panics
///
/// Panics (in debug builds) if objective vectors differ in length.
#[must_use]
pub fn constrained_dominates(a: &Evaluation, b: &Evaluation) -> bool {
    debug_assert_eq!(a.objectives.len(), b.objectives.len());
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation < b.violation,
        (true, true) => {
            let mut strictly_better = false;
            for (x, y) in a.objectives.iter().zip(&b.objectives) {
                if x > y {
                    return false;
                }
                if x < y {
                    strictly_better = true;
                }
            }
            strictly_better
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(objs: &[f64]) -> Evaluation {
        Evaluation::feasible(objs.to_vec())
    }

    #[test]
    fn pareto_domination_rules() {
        assert!(constrained_dominates(&ev(&[1.0, 1.0]), &ev(&[2.0, 2.0])));
        assert!(constrained_dominates(&ev(&[1.0, 2.0]), &ev(&[1.0, 3.0])));
        assert!(!constrained_dominates(&ev(&[1.0, 3.0]), &ev(&[2.0, 2.0])));
        assert!(!constrained_dominates(&ev(&[1.0, 1.0]), &ev(&[1.0, 1.0])));
    }

    #[test]
    fn feasible_always_beats_infeasible() {
        let good = ev(&[100.0, 100.0]);
        let bad = Evaluation::infeasible(vec![0.0, 0.0], 0.1);
        assert!(constrained_dominates(&good, &bad));
        assert!(!constrained_dominates(&bad, &good));
    }

    #[test]
    fn lesser_violation_wins_among_infeasible() {
        let a = Evaluation::infeasible(vec![5.0], 0.1);
        let b = Evaluation::infeasible(vec![1.0], 0.5);
        assert!(constrained_dominates(&a, &b));
        assert!(!constrained_dominates(&b, &a));
    }
}
