//! Genetic operators over bounded integer genomes.
//!
//! The paper's GA updates weights through "mutation and crossover ...
//! applied randomly during the training process" (§IV-A). We provide
//! uniform and one-point crossover plus per-gene reset mutation, all
//! respecting the per-gene bounds of the chromosome encoding.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Crossover flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverKind {
    /// Each gene independently inherited from either parent.
    Uniform,
    /// A single cut point; prefix from one parent, suffix from the other.
    OnePoint,
}

/// Produce two children by crossover.
///
/// # Panics
///
/// Panics if the parents differ in length or are empty.
#[must_use]
pub fn crossover(
    kind: CrossoverKind,
    a: &[u32],
    b: &[u32],
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(a.len(), b.len(), "parents must have equal genome length");
    assert!(!a.is_empty(), "genomes must be non-empty");
    match kind {
        CrossoverKind::Uniform => {
            let mut c1 = Vec::with_capacity(a.len());
            let mut c2 = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                if rng.gen_bool(0.5) {
                    c1.push(x);
                    c2.push(y);
                } else {
                    c1.push(y);
                    c2.push(x);
                }
            }
            (c1, c2)
        }
        CrossoverKind::OnePoint => {
            let cut = rng.gen_range(1..a.len().max(2));
            let cut = cut.min(a.len());
            let mut c1 = a[..cut].to_vec();
            c1.extend_from_slice(&b[cut..]);
            let mut c2 = b[..cut].to_vec();
            c2.extend_from_slice(&a[cut..]);
            (c1, c2)
        }
    }
}

/// Mutate `genes` in place: each gene is independently re-drawn
/// uniformly from its bound with probability `per_gene_prob`.
///
/// # Panics
///
/// Panics if lengths mismatch or a bound is zero.
pub fn mutate(genes: &mut [u32], bounds: &[u32], per_gene_prob: f64, rng: &mut StdRng) {
    mutate_mixed(genes, bounds, per_gene_prob, 0.0, rng);
}

/// Mixed mutation: a mutating gene takes a ±1 *creep* step with
/// probability `creep_fraction` (saturating at the bounds) and a
/// uniform reset otherwise. Creep steps are what let the GA fine-tune
/// pow2 exponents and biases near a good solution, while resets keep
/// global exploration alive.
///
/// # Panics
///
/// Panics if lengths mismatch or a bound is zero.
pub fn mutate_mixed(
    genes: &mut [u32],
    bounds: &[u32],
    per_gene_prob: f64,
    creep_fraction: f64,
    rng: &mut StdRng,
) {
    assert_eq!(genes.len(), bounds.len());
    for (g, &b) in genes.iter_mut().zip(bounds) {
        assert!(b > 0, "gene bound must be positive");
        if rng.gen_bool(per_gene_prob.clamp(0.0, 1.0)) {
            if rng.gen_bool(creep_fraction.clamp(0.0, 1.0)) {
                let up = rng.gen_bool(0.5);
                if up && *g + 1 < b {
                    *g += 1;
                } else if !up && *g > 0 {
                    *g -= 1;
                }
            } else {
                *g = rng.gen_range(0..b);
            }
        }
    }
}

/// Draw a uniformly random genome within `bounds`.
#[must_use]
pub fn random_genome(bounds: &[u32], rng: &mut StdRng) -> Vec<u32> {
    bounds.iter().map(|&b| rng.gen_range(0..b.max(1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn uniform_crossover_preserves_multiset_per_position() {
        let a = vec![1, 2, 3, 4];
        let b = vec![5, 6, 7, 8];
        let mut r = rng();
        let (c1, c2) = crossover(CrossoverKind::Uniform, &a, &b, &mut r);
        for i in 0..4 {
            let mut pair = [c1[i], c2[i]];
            pair.sort_unstable();
            let mut orig = [a[i], b[i]];
            orig.sort_unstable();
            assert_eq!(pair, orig);
        }
    }

    #[test]
    fn one_point_crossover_swaps_a_suffix() {
        let a = vec![1, 1, 1, 1, 1];
        let b = vec![2, 2, 2, 2, 2];
        let mut r = rng();
        let (c1, c2) = crossover(CrossoverKind::OnePoint, &a, &b, &mut r);
        // c1 is 1s then 2s; c2 the complement.
        let switch = c1.iter().position(|&g| g == 2).expect("suffix from b");
        assert!(c1[..switch].iter().all(|&g| g == 1));
        assert!(c1[switch..].iter().all(|&g| g == 2));
        assert!(c2[..switch].iter().all(|&g| g == 2));
        assert!(c2[switch..].iter().all(|&g| g == 1));
    }

    #[test]
    fn mutation_respects_bounds() {
        let bounds = vec![2, 4, 16, 256];
        let mut genes = vec![0, 0, 0, 0];
        let mut r = rng();
        for _ in 0..200 {
            mutate(&mut genes, &bounds, 1.0, &mut r);
            for (g, b) in genes.iter().zip(&bounds) {
                assert!(g < b);
            }
        }
    }

    #[test]
    fn zero_probability_mutation_is_identity() {
        let bounds = vec![8; 10];
        let mut genes = vec![3; 10];
        let mut r = rng();
        mutate(&mut genes, &bounds, 0.0, &mut r);
        assert_eq!(genes, vec![3; 10]);
    }

    #[test]
    fn random_genomes_are_in_bounds_and_varied() {
        let bounds = vec![2, 3, 100, 1000];
        let mut r = rng();
        let g1 = random_genome(&bounds, &mut r);
        let g2 = random_genome(&bounds, &mut r);
        for (g, b) in g1.iter().zip(&bounds) {
            assert!(g < b);
        }
        assert_ne!(g1, g2);
    }
}
