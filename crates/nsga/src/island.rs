//! Island-model NSGA-II: N independent sub-populations with seeded
//! ring migration and one final merged non-dominated front.
//!
//! The island model parallelizes a GA without giving up determinism:
//! the total population splits into N islands, each evolving its own
//! (μ+λ) loop on its own xoshiro256\*\* stream (seeds derived from the
//! master seed by the same splitmix64-over-FNV discipline the pipeline
//! uses for per-dataset streams). Every `migration_every` generations
//! the islands pause at a common barrier and exchange elites around a
//! ring — the selection of emigrants and the choice of replaced locals
//! are both drawn from the islands' own recorded RNG streams, so
//! migration checkpoints and resumes bit-exactly like any other part
//! of the evolution. After the final generation the island populations
//! merge through one non-dominated sort into a single front.
//!
//! The evaluation budget is conserved: island populations sum to the
//! configured total and every island runs the full generation count,
//! so an N-island run performs exactly as many candidate evaluations
//! as the single-population run it replaces. With `islands == 1` the
//! model *is* the single-population run, bit for bit: island 0 keeps
//! the master seed and migration never touches the stream.
//!
//! Epoch checkpoints ([`IslandCheckpoint`]) snapshot every island
//! right after a migration barrier; the per-island legs between
//! barriers can additionally flush ordinary [`SearchCheckpoint`]s
//! through [`IslandModel::run_island_to`]'s forwarding plan, so a
//! killed run resumes mid-epoch without repeating completed work.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::algorithm::{
    CheckpointPlan, CheckpointSink, GenerationStats, Nsga2, NsgaConfig, NsgaResult,
    SearchCheckpoint,
};
use crate::individual::Individual;
use crate::problem::IntProblem;
use crate::sort::{assign_crowding, fast_non_dominated_sort};

/// Default migration cadence in generations (the `PE_MIGRATE_EVERY`
/// fallback upstream).
pub const DEFAULT_MIGRATION_EVERY: usize = 5;

/// Default number of elites each island emits per migration epoch.
pub const DEFAULT_MIGRANTS: usize = 2;

/// FNV-1a over the island tag — the same stream-naming hash the
/// pipeline uses for per-dataset seed derivation.
fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates the per-island seeds so sibling
/// islands never share a stream prefix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed of island `island` under master seed `master`.
///
/// Island 0 keeps the master seed unchanged — that is what makes a
/// one-island model bit-identical to the plain single-population run.
/// Every other island gets `splitmix64(master ^ fnv1a64("island{i}"))`,
/// the exact discipline `derive_seed` applies to dataset names.
#[must_use]
pub fn island_seed(master: u64, island: usize) -> u64 {
    if island == 0 {
        master
    } else {
        splitmix64(master ^ fnv1a64(&format!("island{island}")))
    }
}

/// Island-model hyperparameters: the total search budget plus the
/// island topology laid over it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// The *total* search budget: `population` is the combined size of
    /// all islands and `seed` is the master seed the per-island
    /// streams derive from. Operator rates apply to every island.
    pub nsga: NsgaConfig,
    /// Number of islands (≥ 1; `1` reproduces the plain run exactly).
    pub islands: usize,
    /// Migration cadence in completed generations (≥ 1).
    pub migration_every: usize,
    /// Elites each island emits per migration epoch (1 ..= the
    /// smallest island population).
    pub migrants: usize,
}

impl IslandConfig {
    /// Check the topology is coherent: at least one island, at least
    /// one generation, every island at least 2 individuals, a positive
    /// migration cadence, and a migrant count every island can honor.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, human-readable.
    pub fn validate(&self) -> Result<(), String> {
        if self.islands == 0 {
            return Err("islands must be at least 1".into());
        }
        if self.nsga.generations == 0 {
            return Err("generations must be at least 1".into());
        }
        if self.nsga.population < 2 * self.islands {
            return Err(format!(
                "population {} cannot split into {} islands of at least 2",
                self.nsga.population, self.islands
            ));
        }
        let base = self.nsga.population / self.islands;
        if self.migration_every == 0 {
            return Err("migration_every must be at least 1".into());
        }
        if self.migrants == 0 || self.migrants > base {
            return Err(format!(
                "migrants {} outside 1..={base} (the smallest island population)",
                self.migrants
            ));
        }
        Ok(())
    }

    /// The per-island [`NsgaConfig`]s: the total population split as
    /// evenly as possible (the first `population % islands` islands
    /// take the remainder, one each), the same generation count and
    /// operator rates everywhere, and [`island_seed`]-derived seeds.
    #[must_use]
    pub fn island_configs(&self) -> Vec<NsgaConfig> {
        let n = self.islands;
        let base = self.nsga.population / n;
        let extra = self.nsga.population % n;
        (0..n)
            .map(|i| NsgaConfig {
                population: base + usize::from(i < extra),
                seed: island_seed(self.nsga.seed, i),
                ..self.nsga.clone()
            })
            .collect()
    }

    /// The epoch barrier generations, in order: every multiple of
    /// `migration_every` below the generation count, then the final
    /// generation. Migration fires at every target except the last
    /// (nothing evolves after the final generation, so a final
    /// exchange would only scramble the merged front).
    #[must_use]
    pub fn epoch_targets(&self) -> Vec<usize> {
        let generations = self.nsga.generations;
        let mut targets: Vec<usize> = (1..)
            .map(|epoch| epoch * self.migration_every)
            .take_while(|&t| t < generations)
            .collect();
        targets.push(generations);
        targets
    }
}

/// A snapshot of every island right after a common epoch barrier —
/// by contract taken *after* that barrier's migration, so resuming
/// from it never replays the exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandCheckpoint {
    /// Generations every island had completed at the barrier.
    pub generation: usize,
    /// One [`SearchCheckpoint`] per island, in island order.
    pub islands: Vec<SearchCheckpoint>,
}

impl IslandCheckpoint {
    /// Check this snapshot can resume a run of `config` over a problem
    /// with the given `bounds`: per-island validity against the
    /// derived island configurations plus a uniform generation across
    /// islands (epochs are common barriers).
    ///
    /// # Errors
    ///
    /// Returns the first integrity violation found.
    pub fn validate(&self, config: &IslandConfig, bounds: &[u32]) -> Result<(), String> {
        config.validate()?;
        let island_configs = config.island_configs();
        if self.islands.len() != island_configs.len() {
            return Err(format!(
                "island checkpoint holds {} islands, configuration has {}",
                self.islands.len(),
                island_configs.len()
            ));
        }
        for (index, (state, island_config)) in self.islands.iter().zip(&island_configs).enumerate()
        {
            state
                .validate(island_config, bounds)
                .map_err(|reason| format!("island {index}: {reason}"))?;
            if state.generation != self.generation {
                return Err(format!(
                    "island {index} at generation {} but the epoch barrier is {}",
                    state.generation, self.generation
                ));
            }
        }
        Ok(())
    }
}

/// Destination for [`IslandCheckpoint`]s emitted at epoch barriers.
/// Like [`CheckpointSink`], implementations handle failures internally.
pub trait IslandCheckpointSink {
    /// Persist one epoch snapshot.
    fn save(&self, checkpoint: &IslandCheckpoint);
}

/// Capture-and-forward sink for one island leg: remembers the latest
/// snapshot (the leg's return value) and optionally forwards every
/// flush to the caller's durable sink.
struct Tee<'a> {
    last: RefCell<Option<SearchCheckpoint>>,
    forward: Option<&'a dyn CheckpointSink>,
}

impl CheckpointSink for Tee<'_> {
    fn save(&self, checkpoint: &SearchCheckpoint) {
        if let Some(sink) = self.forward {
            sink.save(checkpoint);
        }
        *self.last.borrow_mut() = Some(checkpoint.clone());
    }
}

/// The island-model runner. See the [module docs](self) for the
/// topology and determinism contract.
#[derive(Debug, Clone)]
pub struct IslandModel {
    config: IslandConfig,
    islands: Vec<NsgaConfig>,
}

impl IslandModel {
    /// A model over a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`IslandConfig::validate`]
    /// (callers wanting friendly errors should validate first).
    #[must_use]
    pub fn new(config: IslandConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|reason| panic!("invalid island configuration: {reason}"));
        let islands = config.island_configs();
        Self { config, islands }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &IslandConfig {
        &self.config
    }

    /// The derived per-island configurations, in island order.
    #[must_use]
    pub fn island_configs(&self) -> &[NsgaConfig] {
        &self.islands
    }

    /// Advance one island to `target` completed generations and return
    /// its state there (or earlier, if `observer` stops the leg).
    ///
    /// `state` is the island's current snapshot (`None` starts fresh
    /// with `seeds`); a state already at or past `target` is returned
    /// unchanged. When `forward` is set, its sink receives every
    /// cadence flush *and* the leg's final state — that is how the
    /// pipeline keeps per-island files durable between epoch barriers.
    ///
    /// # Panics
    ///
    /// Panics as [`Nsga2::run_checkpointed`] does (bad seeds, a state
    /// that fails validation against this island's configuration).
    // The leg is fully described by these eight values; a parameter
    // struct would only re-group them one call level up.
    #[allow(clippy::too_many_arguments)]
    pub fn run_island_to<P: IntProblem>(
        &self,
        island: usize,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        state: Option<SearchCheckpoint>,
        target: usize,
        forward: Option<CheckpointPlan<'_>>,
        observer: &mut dyn FnMut(&GenerationStats) -> bool,
    ) -> SearchCheckpoint {
        if let Some(st) = state.as_ref() {
            if st.generation >= target {
                return state.expect("checked above");
            }
        }
        let tee = Tee {
            last: RefCell::new(None),
            forward: forward.as_ref().map(|plan| plan.sink),
        };
        let plan = CheckpointPlan {
            every: forward.map_or(0, |plan| plan.every),
            sink: &tee,
        };
        let _ = Nsga2::new(self.islands[island].clone()).run_checkpointed(
            problem,
            seeds,
            state,
            Some(plan),
            |stats| observer(stats) && stats.generation + 1 < target,
        );
        tee.last
            .into_inner()
            .expect("an epoch leg always flushes its final state")
    }

    /// One deterministic ring-migration epoch over the island states,
    /// in place. Two seeded phases, both drawn from (and recorded back
    /// into) each island's own RNG stream:
    ///
    /// 1. every island picks `migrants` distinct members of its first
    ///    front (a seeded partial shuffle; fewer if the front is
    ///    smaller) as emigrants;
    /// 2. around the ring (island `i` receives from `i - 1 mod n`),
    ///    each migrant replaces a seeded choice among the receiver's
    ///    *dominated* members (rank > 0) — elites are never displaced,
    ///    and if no dominated members remain the rest of the batch is
    ///    dropped. Receivers re-annotate ranks and crowding.
    ///
    /// A single island (or `migrants == 0`) is a strict no-op: the RNG
    /// streams are not touched, keeping the one-island model
    /// bit-identical to the plain run.
    pub fn migrate(&self, states: &mut [SearchCheckpoint]) {
        let n = states.len();
        if n < 2 || self.config.migrants == 0 {
            return;
        }
        // Phase 1: seeded emigrant selection, island order.
        let mut outgoing: Vec<Vec<Individual>> = Vec::with_capacity(n);
        for state in states.iter_mut() {
            let mut rng = StdRng::from_state(state.rng_state);
            let mut front: Vec<usize> = state
                .population
                .iter()
                .enumerate()
                .filter(|(_, ind)| ind.rank == 0)
                .map(|(index, _)| index)
                .collect();
            let emigrants = self.config.migrants.min(front.len());
            for slot in 0..emigrants {
                let pick = rng.gen_range(slot..front.len());
                front.swap(slot, pick);
            }
            outgoing.push(
                front[..emigrants]
                    .iter()
                    .map(|&index| state.population[index].clone())
                    .collect(),
            );
            state.rng_state = rng.state();
        }
        // Phase 2: ring delivery into seeded dominated slots, island
        // order again (the two passes keep each island's draws in one
        // contiguous, resumable stream segment per phase).
        for island in 0..n {
            let incoming = outgoing[(island + n - 1) % n].clone();
            let state = &mut states[island];
            let mut rng = StdRng::from_state(state.rng_state);
            let mut dominated: Vec<usize> = state
                .population
                .iter()
                .enumerate()
                .filter(|(_, ind)| ind.rank != 0)
                .map(|(index, _)| index)
                .collect();
            for migrant in incoming {
                if dominated.is_empty() {
                    break;
                }
                let pick = rng.gen_range(0..dominated.len());
                let slot = dominated.swap_remove(pick);
                state.population[slot] = migrant;
            }
            state.rng_state = rng.state();
            let fronts = fast_non_dominated_sort(&mut state.population);
            for front in &fronts {
                assign_crowding(&mut state.population, front);
            }
        }
    }

    /// Merge final island states into one result: populations
    /// concatenate in island order, one non-dominated sort annotates
    /// the union, and the merged first front is the Pareto front.
    /// Evaluations sum across islands. A single island passes through
    /// untouched — its stored (μ+λ)-pool annotations are exactly what
    /// the plain run reports, and re-sorting the μ survivors alone
    /// could not reproduce them.
    ///
    /// # Panics
    ///
    /// Panics on an empty state slice.
    #[must_use]
    pub fn merge(&self, states: &[SearchCheckpoint]) -> NsgaResult {
        assert!(!states.is_empty(), "merge needs at least one island");
        if states.len() == 1 {
            let state = &states[0];
            let pareto_front: Vec<Individual> = state
                .population
                .iter()
                .filter(|ind| ind.rank == 0)
                .cloned()
                .collect();
            return NsgaResult {
                population: state.population.clone(),
                pareto_front,
                evaluations: state.evaluations,
                generations: state.generation,
            };
        }
        let mut population: Vec<Individual> = states
            .iter()
            .flat_map(|state| state.population.iter().cloned())
            .collect();
        let fronts = fast_non_dominated_sort(&mut population);
        for front in &fronts {
            assign_crowding(&mut population, front);
        }
        let pareto_front: Vec<Individual> = population
            .iter()
            .filter(|ind| ind.rank == 0)
            .cloned()
            .collect();
        NsgaResult {
            evaluations: states.iter().map(|state| state.evaluations).sum(),
            generations: states
                .iter()
                .map(|state| state.generation)
                .max()
                .unwrap_or(0),
            population,
            pareto_front,
        }
    }

    /// The serial reference driver: run every island epoch by epoch
    /// with migration at each interior barrier, then merge.
    ///
    /// `seeds` are dealt round-robin (seed `j` joins island `j mod N`),
    /// so doped initialization spreads over the archipelago. `resume`
    /// continues from an epoch snapshot — post-migration by contract,
    /// so the barrier it names is never re-migrated. `epoch_sink`
    /// receives one [`IslandCheckpoint`] per completed barrier
    /// (including the final generation). The observer sees every
    /// executed generation tagged with its island index and may stop
    /// the run cooperatively, exactly like
    /// [`Nsga2::run_controlled`]'s observer.
    ///
    /// Parallel callers schedule the same epoch legs over threads via
    /// [`run_island_to`](Self::run_island_to) /
    /// [`migrate`](Self::migrate) / [`merge`](Self::merge); this
    /// serial composition is the behavioral reference they must match
    /// bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `resume` fails [`IslandCheckpoint::validate`], or as
    /// [`Nsga2::run_checkpointed`] does.
    pub fn run<P: IntProblem, F: FnMut(usize, &GenerationStats) -> bool>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        resume: Option<IslandCheckpoint>,
        epoch_sink: Option<&dyn IslandCheckpointSink>,
        mut observer: F,
    ) -> NsgaResult {
        let n = self.islands.len();
        let mut island_seeds: Vec<Vec<Vec<u32>>> = (0..n).map(|_| Vec::new()).collect();
        for (index, genome) in seeds.into_iter().enumerate() {
            island_seeds[index % n].push(genome);
        }

        let mut migrated_through = 0;
        let mut states: Vec<Option<SearchCheckpoint>> = (0..n).map(|_| None).collect();
        if let Some(checkpoint) = resume {
            checkpoint
                .validate(&self.config, problem.bounds())
                .unwrap_or_else(|reason| panic!("invalid island checkpoint: {reason}"));
            migrated_through = checkpoint.generation;
            states = checkpoint.islands.into_iter().map(Some).collect();
        }

        let mut stopped = false;
        for target in self.config.epoch_targets() {
            if target <= migrated_through {
                continue;
            }
            for island in 0..n {
                let state = states[island].take();
                let leg_seeds = std::mem::take(&mut island_seeds[island]);
                let mut cancelled = false;
                let state = self.run_island_to(
                    island,
                    problem,
                    leg_seeds,
                    state,
                    target,
                    None,
                    &mut |stats| {
                        let keep = observer(island, stats);
                        cancelled |= !keep;
                        keep
                    },
                );
                states[island] = Some(state);
                if cancelled {
                    stopped = true;
                    break;
                }
            }
            if stopped {
                break;
            }
            if target < self.config.nsga.generations {
                let mut barrier: Vec<SearchCheckpoint> = states
                    .iter_mut()
                    .map(|slot| slot.take().expect("every island reached the barrier"))
                    .collect();
                self.migrate(&mut barrier);
                migrated_through = target;
                for (slot, state) in states.iter_mut().zip(barrier) {
                    *slot = Some(state);
                }
            }
            if let Some(sink) = epoch_sink {
                sink.save(&IslandCheckpoint {
                    generation: target,
                    islands: states
                        .iter()
                        .map(|slot| slot.clone().expect("every island reached the barrier"))
                        .collect(),
                });
            }
        }

        // A cooperative stop can leave later islands of the first
        // epoch unstarted; a cancelled run merges whatever exists
        // (uncancelled runs always hold all N states).
        let finals: Vec<SearchCheckpoint> = states.into_iter().flatten().collect();
        self.merge(&finals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// Minimize (x - 30)² and (x - 70)² over a single gene — the same
    /// trade-off the algorithm tests use, big enough fronts to migrate.
    struct TwoHumps;

    impl IntProblem for TwoHumps {
        fn bounds(&self) -> &[u32] {
            const B: [u32; 1] = [101];
            &B
        }
        fn evaluate(&self, genes: &[u32]) -> Evaluation {
            let x = f64::from(genes[0]);
            Evaluation::feasible(vec![(x - 30.0).powi(2), (x - 70.0).powi(2)])
        }
    }

    fn config(islands: usize) -> IslandConfig {
        IslandConfig {
            nsga: NsgaConfig {
                population: 24,
                generations: 10,
                seed: 42,
                ..NsgaConfig::default()
            },
            islands,
            migration_every: 3,
            migrants: 2,
        }
    }

    #[test]
    fn island_seeds_are_pinned() {
        // island 0 keeps the master seed (one island ≡ the plain run);
        // the rest follow splitmix64(master ^ fnv1a64("island{i}")),
        // pinned so the derivation can never drift silently.
        assert_eq!(island_seed(0, 0), 0);
        assert_eq!(island_seed(7, 0), 7);
        assert_eq!(island_seed(0, 1), 0x81d9_54a7_b2a7_6f04);
        assert_eq!(island_seed(0, 2), 0x6eae_d8d9_98ce_0051);
        assert_eq!(island_seed(0, 3), 0x5a1b_615f_0bee_b315);
        assert_eq!(island_seed(7, 1), 0xf5a1_d8b6_a348_df1f);
        assert_eq!(island_seed(7, 2), 0xb9a5_e978_58a1_916f);
    }

    #[test]
    fn validation_catches_incoherent_topologies() {
        assert!(config(1).validate().is_ok());
        assert!(config(4).validate().is_ok());
        let mut bad = config(0);
        assert!(bad.validate().is_err());
        bad = config(13); // 24 cannot split into 13 islands of ≥ 2
        assert!(bad.validate().is_err());
        bad = config(2);
        bad.migration_every = 0;
        assert!(bad.validate().is_err());
        bad = config(2);
        bad.migrants = 0;
        assert!(bad.validate().is_err());
        bad = config(2);
        bad.migrants = 13; // smallest island holds 12
        assert!(bad.validate().is_err());
        bad = config(2);
        bad.nsga.generations = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn budget_splits_evenly_and_epochs_cover_the_run() {
        let cfg = IslandConfig {
            nsga: NsgaConfig {
                population: 23,
                generations: 10,
                seed: 5,
                ..NsgaConfig::default()
            },
            islands: 4,
            migration_every: 4,
            migrants: 1,
        };
        let islands = cfg.island_configs();
        let sizes: Vec<usize> = islands.iter().map(|c| c.population).collect();
        assert_eq!(sizes, [6, 6, 6, 5]);
        assert_eq!(islands[0].seed, 5);
        assert!(islands.iter().skip(1).all(|c| c.seed != 5));
        assert_eq!(cfg.epoch_targets(), [4, 8, 10]);
        let one_epoch = IslandConfig {
            migration_every: 50,
            ..cfg
        };
        assert_eq!(one_epoch.epoch_targets(), [10]);
    }

    #[test]
    fn one_island_is_the_plain_run_bit_for_bit() {
        let cfg = config(1);
        let plain = Nsga2::new(cfg.nsga.clone()).run(&TwoHumps);
        let merged = IslandModel::new(cfg).run(&TwoHumps, Vec::new(), None, None, |_, _| true);
        assert_eq!(merged, plain);
    }

    #[test]
    fn runs_are_deterministic_and_budget_conserving() {
        let cfg = config(3);
        let model = IslandModel::new(cfg.clone());
        let a = model.run(&TwoHumps, Vec::new(), None, None, |_, _| true);
        let b = model.run(&TwoHumps, Vec::new(), None, None, |_, _| true);
        assert_eq!(a, b);
        // Same budget as the single-population run: init + G waves
        // over the total population.
        let expected = (cfg.nsga.generations as u64 + 1) * cfg.nsga.population as u64;
        assert_eq!(a.evaluations, expected);
        assert_eq!(a.population.len(), cfg.nsga.population);
        assert!(!a.pareto_front.is_empty());
        assert!(a.pareto_front.iter().all(|ind| ind.rank == 0));
    }

    #[test]
    fn migration_preserves_checkpoint_invariants() {
        let cfg = config(3);
        let model = IslandModel::new(cfg.clone());
        // Drive every island to the first barrier by hand.
        let mut states: Vec<SearchCheckpoint> = (0..cfg.islands)
            .map(|island| {
                model.run_island_to(
                    island,
                    &TwoHumps,
                    Vec::new(),
                    None,
                    cfg.migration_every,
                    None,
                    &mut |_| true,
                )
            })
            .collect();
        let before: Vec<[u64; 4]> = states.iter().map(|s| s.rng_state).collect();
        model.migrate(&mut states);
        let checkpoint = IslandCheckpoint {
            generation: cfg.migration_every,
            islands: states.clone(),
        };
        checkpoint
            .validate(&cfg, TwoHumps.bounds())
            .expect("migrated states stay valid");
        // Migration consumed RNG on every island…
        for (state, old) in states.iter().zip(&before) {
            assert_ne!(state.rng_state, *old);
        }
        // …and a single island consumes nothing at all.
        let solo = IslandModel::new(config(1));
        let mut one =
            vec![solo.run_island_to(0, &TwoHumps, Vec::new(), None, 3, None, &mut |_| true)];
        let old = one[0].rng_state;
        solo.migrate(&mut one);
        assert_eq!(one[0].rng_state, old);
    }

    /// Epoch sink capturing every barrier snapshot in order.
    #[derive(Default)]
    struct CaptureEpochs(RefCell<Vec<IslandCheckpoint>>);

    impl IslandCheckpointSink for CaptureEpochs {
        fn save(&self, checkpoint: &IslandCheckpoint) {
            self.0.borrow_mut().push(checkpoint.clone());
        }
    }

    #[test]
    fn resume_from_every_epoch_checkpoint_matches_the_uninterrupted_run() {
        let cfg = config(3);
        let model = IslandModel::new(cfg.clone());
        let sink = CaptureEpochs::default();
        let baseline = model.run(&TwoHumps, Vec::new(), None, Some(&sink), |_, _| true);
        let epochs = sink.0.into_inner();
        assert_eq!(
            epochs.iter().map(|e| e.generation).collect::<Vec<_>>(),
            cfg.epoch_targets()
        );
        for epoch in epochs {
            // Round-trip through JSON like the on-disk epoch file.
            let json = serde_json::to_string(&epoch).expect("epoch serializes");
            let restored: IslandCheckpoint = serde_json::from_str(&json).expect("epoch parses");
            restored
                .validate(&cfg, TwoHumps.bounds())
                .expect("round-tripped epoch is valid");
            let resumed = model.run(&TwoHumps, Vec::new(), Some(restored), None, |_, _| true);
            assert_eq!(resumed, baseline);
        }
    }

    #[test]
    fn observer_tags_islands_and_can_stop_the_run() {
        let cfg = config(2);
        let model = IslandModel::new(cfg.clone());
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let full = model.run(&TwoHumps, Vec::new(), None, None, |island, stats| {
            seen.push((island, stats.generation));
            true
        });
        assert_eq!(full.generations, cfg.nsga.generations);
        // Every island reports every generation exactly once.
        for island in 0..cfg.islands {
            let gens: Vec<usize> = seen
                .iter()
                .filter(|(i, _)| *i == island)
                .map(|(_, g)| *g)
                .collect();
            assert_eq!(gens, (0..cfg.nsga.generations).collect::<Vec<_>>());
        }
        // A stop inside the first epoch ends the run early.
        let stopped = model.run(&TwoHumps, Vec::new(), None, None, |island, stats| {
            !(island == 0 && stats.generation == 1)
        });
        assert!(stopped.generations < cfg.nsga.generations);
    }

    #[test]
    fn seeds_spread_round_robin_and_survive_elitism() {
        let cfg = IslandConfig {
            nsga: NsgaConfig {
                population: 8,
                generations: 1,
                mutation_prob: 0.0,
                crossover_prob: 0.0,
                seed: 9,
                ..NsgaConfig::default()
            },
            islands: 2,
            migration_every: 5,
            migrants: 1,
        };
        // One strong seed per island: gene 0 minimizes objective 0, so
        // both must survive their island's elitist selection.
        let merged =
            IslandModel::new(cfg).run(&TwoHumps, vec![vec![30], vec![30]], None, None, |_, _| true);
        assert!(merged.population.iter().filter(|i| i.genes == [30]).count() >= 2);
    }
}
