//! A seeded, generic NSGA-II implementation (Deb et al. 2002).
//!
//! The paper trains its printed MLPs with NSGA-II because the hardware
//! approximations are discrete — gradients do not exist for masks and
//! pow2 exponents — and because accuracy and area must be optimized
//! jointly (§IV-A). This crate provides exactly what that flow needs:
//!
//! * integer-vector genomes with per-gene bounds ([`IntProblem`]),
//! * Deb's constrained-domination (the 10% accuracy-loss bound becomes
//!   a constraint, not a penalty),
//! * fast non-dominated sorting + crowding distance ([`sort`]),
//! * uniform / one-point crossover and reset mutation ([`operators`]),
//! * an elitist (μ+λ) main loop with seed-population injection for the
//!   paper's doped initialization ([`Nsga2::run_seeded`]).
//!
//! Everything is deterministic in the configured seed.
//!
//! # Example
//!
//! ```
//! use pe_nsga::{Evaluation, IntProblem, Nsga2, NsgaConfig};
//!
//! struct Sphere;
//! impl IntProblem for Sphere {
//!     fn bounds(&self) -> &[u32] { const B: [u32; 2] = [64, 64]; &B }
//!     fn evaluate(&self, g: &[u32]) -> Evaluation {
//!         let (x, y) = (f64::from(g[0]), f64::from(g[1]));
//!         Evaluation::feasible(vec![x * x + y * y, (x - 10.0).powi(2) + y * y])
//!     }
//! }
//!
//! let result = Nsga2::new(NsgaConfig { population: 20, generations: 20, ..NsgaConfig::default() })
//!     .run(&Sphere);
//! assert!(!result.pareto_front.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod individual;
pub mod island;
pub mod operators;
pub mod problem;
pub mod sort;

pub use algorithm::{
    CheckpointPlan, CheckpointSink, GenerationStats, Nsga2, NsgaConfig, NsgaResult,
    SearchCheckpoint,
};
pub use individual::Individual;
pub use island::{
    island_seed, IslandCheckpoint, IslandCheckpointSink, IslandConfig, IslandModel,
    DEFAULT_MIGRANTS, DEFAULT_MIGRATION_EVERY,
};
pub use operators::{crossover, mutate, random_genome, CrossoverKind};
pub use problem::{constrained_dominates, Evaluation, IntProblem};
pub use sort::{assign_crowding, fast_non_dominated_sort};
