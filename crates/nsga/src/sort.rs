//! Fast non-dominated sorting and crowding distance (Deb et al. 2002).

use crate::individual::Individual;
use crate::problem::constrained_dominates;

/// Assign `rank` to every individual and return the fronts as index
/// lists (front 0 first). Runs the O(MN²) fast non-dominated sort of
/// the NSGA-II paper, with constrained domination.
pub fn fast_non_dominated_sort(pop: &mut [Individual]) -> Vec<Vec<usize>> {
    let n = pop.len();
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dominated_count = vec![0usize; n];
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut first = Vec::new();

    for p in 0..n {
        for q in (p + 1)..n {
            if constrained_dominates(&pop[p].evaluation, &pop[q].evaluation) {
                dominates[p].push(q);
                dominated_count[q] += 1;
            } else if constrained_dominates(&pop[q].evaluation, &pop[p].evaluation) {
                dominates[q].push(p);
                dominated_count[p] += 1;
            }
        }
        if dominated_count[p] == 0 {
            // May be incremented by later comparisons; verified below.
        }
    }
    for (p, &c) in dominated_count.iter().enumerate() {
        if c == 0 {
            pop[p].rank = 0;
            first.push(p);
        }
    }
    fronts.push(first);

    let mut i = 0;
    while !fronts[i].is_empty() {
        let mut next = Vec::new();
        for &p in &fronts[i] {
            for &q in &dominates[p] {
                dominated_count[q] -= 1;
                if dominated_count[q] == 0 {
                    pop[q].rank = i + 1;
                    next.push(q);
                }
            }
        }
        i += 1;
        fronts.push(next);
    }
    fronts.pop();
    fronts
}

/// Assign crowding distances to the individuals of one front.
pub fn assign_crowding(pop: &mut [Individual], front: &[usize]) {
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let m = pop[front[0]].evaluation.objectives.len();
    for obj in 0..m {
        let mut order: Vec<usize> = front.to_vec();
        order.sort_by(|&a, &b| {
            pop[a].evaluation.objectives[obj]
                .partial_cmp(&pop[b].evaluation.objectives[obj])
                .expect("objectives must be finite")
        });
        let lo = pop[order[0]].evaluation.objectives[obj];
        let hi = pop[*order.last().expect("front non-empty")]
            .evaluation
            .objectives[obj];
        let span = hi - lo;
        pop[order[0]].crowding = f64::INFINITY;
        pop[*order.last().expect("front non-empty")].crowding = f64::INFINITY;
        if span <= 0.0 {
            continue;
        }
        for w in order.windows(3) {
            let (prev, mid, next) = (w[0], w[1], w[2]);
            let delta = (pop[next].evaluation.objectives[obj]
                - pop[prev].evaluation.objectives[obj])
                / span;
            if pop[mid].crowding.is_finite() {
                pop[mid].crowding += delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    fn ind(objs: &[f64]) -> Individual {
        Individual::new(vec![], Evaluation::feasible(objs.to_vec()))
    }

    #[test]
    fn sorts_into_expected_fronts() {
        // (1,1) dominates (2,2) dominates (3,3); (1,3) and (3,1) are on
        // the first front with (1,1)? No: (1,1) dominates both.
        let mut pop = vec![
            ind(&[1.0, 1.0]),
            ind(&[2.0, 2.0]),
            ind(&[3.0, 3.0]),
            ind(&[1.0, 3.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts[0], vec![0]);
        assert!(fronts[1].contains(&1));
        assert!(fronts[1].contains(&3));
        assert_eq!(fronts[2], vec![2]);
        assert_eq!(pop[0].rank, 0);
        assert_eq!(pop[2].rank, 2);
    }

    #[test]
    fn non_dominated_set_is_one_front() {
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[3.0, 2.0]),
            ind(&[4.0, 1.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
    }

    #[test]
    fn infeasible_individuals_rank_behind_feasible() {
        let mut pop = vec![
            Individual::new(vec![], Evaluation::infeasible(vec![0.0, 0.0], 1.0)),
            ind(&[9.0, 9.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts[0], vec![1]);
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn crowding_rewards_boundary_and_spread() {
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[2.1, 2.9]),
            ind(&[4.0, 1.0]),
        ];
        let front: Vec<usize> = vec![0, 1, 2, 3];
        assign_crowding(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[3].crowding.is_infinite());
        // Individual 1 sits in a sparser neighbourhood than 2.
        assert!(pop[1].crowding > 0.0 && pop[2].crowding > 0.0);
    }

    #[test]
    fn small_fronts_get_infinite_crowding() {
        let mut pop = vec![ind(&[1.0, 2.0]), ind(&[2.0, 1.0])];
        let front = vec![0, 1];
        assign_crowding(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[1].crowding.is_infinite());
    }
}
