//! Individuals: genome + evaluation + NSGA-II bookkeeping.

use serde::{Deserialize, Serialize};

use crate::problem::Evaluation;

/// One member of an NSGA-II population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    /// Integer genome.
    pub genes: Vec<u32>,
    /// Cached evaluation.
    pub evaluation: Evaluation,
    /// Non-domination rank (0 = first front), set by the sorter.
    pub rank: usize,
    /// Crowding distance within its front, set by the sorter.
    pub crowding: f64,
}

impl Individual {
    /// Wrap a freshly evaluated genome (rank/crowding unset).
    #[must_use]
    pub fn new(genes: Vec<u32>, evaluation: Evaluation) -> Self {
        Self {
            genes,
            evaluation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// Tournament ordering: lower rank wins; ties break on larger
    /// crowding distance (NSGA-II's crowded-comparison operator).
    #[must_use]
    pub fn beats(&self, other: &Individual) -> bool {
        self.rank < other.rank || (self.rank == other.rank && self.crowding > other.crowding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowded_comparison() {
        let mut a = Individual::new(vec![0], Evaluation::feasible(vec![0.0]));
        let mut b = Individual::new(vec![1], Evaluation::feasible(vec![1.0]));
        a.rank = 0;
        b.rank = 1;
        assert!(a.beats(&b));
        b.rank = 0;
        a.crowding = 2.0;
        b.crowding = 1.0;
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
    }
}
