//! The NSGA-II main loop.
//!
//! Elitist (μ+λ) evolution with fast non-dominated sorting, crowding-
//! distance truncation and binary tournaments, as in Deb et al. (2002)
//! — the algorithm the paper picked for its "simplicity, low
//! computational complexity, and enhanced convergence" (§IV-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::individual::Individual;
use crate::operators::{crossover, mutate_mixed, random_genome, CrossoverKind};
use crate::problem::IntProblem;
use crate::sort::{assign_crowding, fast_non_dominated_sort};

/// NSGA-II hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsgaConfig {
    /// Population size μ (kept constant across generations).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability that a mating pair undergoes crossover.
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Fraction of mutations that are ±1 creep steps instead of uniform
    /// resets (see [`crate::operators::mutate_mixed`]).
    pub creep_fraction: f64,
    /// Crossover flavour.
    pub crossover_kind: CrossoverKind,
    /// RNG seed: runs are fully reproducible.
    pub seed: u64,
}

impl Default for NsgaConfig {
    /// The paper's operator rates: crossover 0.7, mutation 0.2
    /// (interpreted per mating / scaled per gene as is standard), with
    /// a moderate default budget.
    fn default() -> Self {
        Self {
            population: 100,
            generations: 100,
            crossover_prob: 0.7,
            mutation_prob: 0.02,
            creep_fraction: 0.5,
            crossover_kind: CrossoverKind::Uniform,
            seed: 0,
        }
    }
}

/// Per-generation progress snapshot handed to the observer callback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Size of the current first front.
    pub front_size: usize,
    /// Best (minimum) value of each objective in the population.
    pub best_objectives: Vec<f64>,
    /// Number of evaluations performed so far.
    pub evaluations: u64,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsgaResult {
    /// Final population (rank/crowding annotated).
    pub population: Vec<Individual>,
    /// The final first (non-dominated) front.
    pub pareto_front: Vec<Individual>,
    /// Total candidate evaluations, including the initial population.
    pub evaluations: u64,
    /// Generations executed.
    pub generations: usize,
}

/// A serializable snapshot of a run taken right after a completed
/// generation. Restoring it (see [`Nsga2::run_checkpointed`]) resumes
/// the evolution bit-exactly: the population, the RNG stream position
/// and the evaluation counter all continue where the snapshot left off,
/// so a killed-and-resumed run is byte-identical to an uninterrupted
/// one.
///
/// The population's rank/crowding annotations are part of the snapshot
/// and are restored verbatim: survivors carry annotations computed
/// over the full (μ+λ) selection pool, which the μ survivors alone
/// cannot reproduce, and the next generation's tournaments depend on
/// them. The one JSON wrinkle — front-boundary points' `+∞` crowding
/// renders as `null` — is reversed on resume (crowding is never NaN
/// and never `-∞`, so the mapping is lossless).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// The configuration of the run that produced this snapshot. A
    /// checkpoint only resumes a run with an identical configuration.
    pub config: NsgaConfig,
    /// Generations completed when the snapshot was taken (1-based:
    /// after generation index `g` completes this is `g + 1`).
    pub generation: usize,
    /// xoshiro256\*\* stream state at the snapshot point.
    pub rng_state: [u64; 4],
    /// Candidate evaluations performed so far.
    pub evaluations: u64,
    /// The surviving population after `generation` generations.
    pub population: Vec<Individual>,
    /// Per-generation stats emitted so far (one per completed
    /// generation), so observers of a resumed run can reconstruct the
    /// full history.
    pub history: Vec<GenerationStats>,
}

impl SearchCheckpoint {
    /// Check that this snapshot can resume a run of `config` over a
    /// problem with the given `bounds`. Returns a human-readable reason
    /// when it cannot (mismatched configuration, wrong population
    /// shape, inconsistent counters, torn data).
    ///
    /// # Errors
    ///
    /// Returns the first integrity violation found.
    pub fn validate(&self, config: &NsgaConfig, bounds: &[u32]) -> Result<(), String> {
        if self.config != *config {
            return Err("checkpoint was taken under a different configuration".into());
        }
        if self.generation == 0 || self.generation > config.generations {
            return Err(format!(
                "checkpoint generation {} outside 1..={}",
                self.generation, config.generations
            ));
        }
        if self.population.len() != config.population {
            return Err(format!(
                "checkpoint population {} != configured {}",
                self.population.len(),
                config.population
            ));
        }
        for ind in &self.population {
            if ind.genes.len() != bounds.len() {
                return Err(format!(
                    "checkpoint genome length {} != problem arity {}",
                    ind.genes.len(),
                    bounds.len()
                ));
            }
            if ind.genes.iter().zip(bounds).any(|(&g, &b)| g >= b) {
                return Err("checkpoint genome exceeds problem bounds".into());
            }
        }
        if self.rng_state == [0; 4] {
            return Err("checkpoint RNG state is degenerate (all zero)".into());
        }
        if self.history.len() != self.generation {
            return Err(format!(
                "checkpoint history length {} != generation {}",
                self.history.len(),
                self.generation
            ));
        }
        let expected_evals = (self.generation as u64 + 1) * config.population as u64;
        if self.evaluations != expected_evals {
            return Err(format!(
                "checkpoint evaluations {} != expected {expected_evals}",
                self.evaluations
            ));
        }
        Ok(())
    }
}

/// Destination for [`SearchCheckpoint`]s emitted mid-run (a file, a
/// test buffer, …). Implementations must not assume they are called at
/// any particular cadence.
pub trait CheckpointSink {
    /// Persist one snapshot. Failures must be handled internally —
    /// checkpointing is best-effort durability and must never abort the
    /// search itself.
    fn save(&self, checkpoint: &SearchCheckpoint);
}

/// Cadence and destination for mid-run checkpointing.
#[derive(Clone, Copy)]
pub struct CheckpointPlan<'a> {
    /// Emit a snapshot every this many completed generations (`0`
    /// disables cadence-driven snapshots; a stop requested by the
    /// observer and the final generation still flush one).
    pub every: usize,
    /// Where snapshots go.
    pub sink: &'a dyn CheckpointSink,
}

impl std::fmt::Debug for CheckpointPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointPlan")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// The NSGA-II optimizer.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: NsgaConfig,
}

impl Nsga2 {
    /// Optimizer with the given configuration.
    #[must_use]
    pub fn new(config: NsgaConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NsgaConfig {
        &self.config
    }

    /// Run the optimizer with a randomly initialized population.
    pub fn run<P: IntProblem>(&self, problem: &P) -> NsgaResult {
        self.run_seeded(problem, Vec::new(), |_| {})
    }

    /// Run with an initial (possibly partial) seed population and a
    /// per-generation observer.
    ///
    /// `seeds` genomes are injected verbatim (truncated to the
    /// population size); the remainder is drawn uniformly — this is the
    /// hook the paper's "doped" initialization uses (§IV-A: ~10%
    /// nearly non-approximate chromosomes).
    ///
    /// # Panics
    ///
    /// Panics if the population size is zero or a seed genome has the
    /// wrong length.
    pub fn run_seeded<P: IntProblem, F: FnMut(&GenerationStats)>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        mut observer: F,
    ) -> NsgaResult {
        self.run_controlled(problem, seeds, |stats| {
            observer(stats);
            true
        })
    }

    /// Like [`run_seeded`](Self::run_seeded), but the observer also
    /// steers the run: returning `false` stops the evolution after the
    /// current generation (cooperative cancellation).
    ///
    /// The result's `generations` field records how many generations
    /// actually executed; up to that point the run is bit-identical to
    /// an uncancelled one.
    ///
    /// # Panics
    ///
    /// Panics if the population size is zero or a seed genome has the
    /// wrong length.
    pub fn run_controlled<P: IntProblem, F: FnMut(&GenerationStats) -> bool>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        observer: F,
    ) -> NsgaResult {
        self.run_checkpointed(problem, seeds, None, None, observer)
    }

    /// Like [`run_controlled`](Self::run_controlled), plus crash-safe
    /// checkpointing: when `resume` carries a [`SearchCheckpoint`] the
    /// run skips the already-completed generations and continues the
    /// RNG stream, population and evaluation counter exactly where the
    /// snapshot was taken — the resumed run is bit-identical to an
    /// uninterrupted one. When `plan` is set, a snapshot is emitted
    /// through its sink every `plan.every` completed generations, after
    /// the final generation, and whenever the observer requests a stop
    /// (so a cancelled run resumes where it stopped).
    ///
    /// The observer only sees generations actually executed in this
    /// call; replayed history is available in `resume.history`.
    ///
    /// # Panics
    ///
    /// Panics if the population size is below 2, a seed genome has the
    /// wrong length, or `resume` fails [`SearchCheckpoint::validate`]
    /// against this configuration and problem (callers wanting
    /// fallback-to-fresh behaviour should validate before passing it).
    pub fn run_checkpointed<P: IntProblem, F: FnMut(&GenerationStats) -> bool>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        resume: Option<SearchCheckpoint>,
        plan: Option<CheckpointPlan<'_>>,
        mut observer: F,
    ) -> NsgaResult {
        let cfg = &self.config;
        assert!(cfg.population >= 2, "population must be at least 2");
        let bounds = problem.bounds().to_vec();

        let (mut pop, mut rng, mut evaluations, mut history, start);
        if let Some(cp) = resume {
            cp.validate(cfg, &bounds)
                .unwrap_or_else(|reason| panic!("invalid checkpoint: {reason}"));
            rng = StdRng::from_state(cp.rng_state);
            evaluations = cp.evaluations;
            start = cp.generation;
            history = cp.history;
            pop = cp.population;
            for ind in &mut pop {
                // A front-boundary point's +∞ crowding renders as JSON
                // null and deserializes as NaN; map it back so the
                // restored annotations equal the snapshot's exactly.
                if ind.crowding.is_nan() {
                    ind.crowding = f64::INFINITY;
                }
            }
        } else {
            rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c62_272e_07bb_0142);
            evaluations = 0u64;
            start = 0;
            history = Vec::new();

            // Initial population: seeds first, random fill after. All
            // genomes are generated first, then scored as one batch — the
            // RNG stream (and therefore the run) is identical to scoring
            // them one by one, but problems with a fast bulk path (see
            // [`IntProblem::evaluate_batch`]) get the whole wave at once.
            let mut genomes: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
            for genes in seeds.into_iter().take(cfg.population) {
                assert_eq!(genes.len(), bounds.len(), "seed genome length mismatch");
                genomes.push(genes);
            }
            while genomes.len() < cfg.population {
                genomes.push(random_genome(&bounds, &mut rng));
            }
            pop = evaluate_wave(problem, genomes, &mut evaluations);
            annotate(&mut pop);
        }

        let mut executed = start;
        for generation in start..cfg.generations {
            // Offspring via binary tournaments + crossover + mutation;
            // the wave is bred first, then evaluated as one batch.
            let mut offspring_genomes: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
            while offspring_genomes.len() < cfg.population {
                let p1 = tournament(&pop, &mut rng);
                let p2 = tournament(&pop, &mut rng);
                let (mut c1, mut c2) = if rng.gen_bool(cfg.crossover_prob.clamp(0.0, 1.0)) {
                    crossover(cfg.crossover_kind, &pop[p1].genes, &pop[p2].genes, &mut rng)
                } else {
                    (pop[p1].genes.clone(), pop[p2].genes.clone())
                };
                mutate_mixed(
                    &mut c1,
                    &bounds,
                    cfg.mutation_prob,
                    cfg.creep_fraction,
                    &mut rng,
                );
                mutate_mixed(
                    &mut c2,
                    &bounds,
                    cfg.mutation_prob,
                    cfg.creep_fraction,
                    &mut rng,
                );
                offspring_genomes.push(c1);
                if offspring_genomes.len() < cfg.population {
                    offspring_genomes.push(c2);
                }
            }
            let offspring = evaluate_wave(problem, offspring_genomes, &mut evaluations);

            // Environmental selection over parents + offspring.
            pop.extend(offspring);
            pop = select_mu(pop, cfg.population);

            let front_size = pop.iter().filter(|i| i.rank == 0).count();
            let m = pop[0].evaluation.objectives.len();
            let best_objectives: Vec<f64> = (0..m)
                .map(|obj| {
                    pop.iter()
                        .map(|i| i.evaluation.objectives[obj])
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            executed = generation + 1;
            let stats = GenerationStats {
                generation,
                front_size,
                best_objectives,
                evaluations,
            };
            history.push(stats.clone());
            let keep_going = observer(&stats);
            if let Some(plan) = plan {
                let due = plan.every > 0 && executed % plan.every == 0;
                let stopping = !keep_going || executed == cfg.generations;
                if due || stopping {
                    plan.sink.save(&SearchCheckpoint {
                        config: cfg.clone(),
                        generation: executed,
                        rng_state: rng.state(),
                        evaluations,
                        population: pop.clone(),
                        history: history.clone(),
                    });
                }
            }
            if !keep_going {
                break;
            }
        }

        let pareto_front: Vec<Individual> = pop.iter().filter(|i| i.rank == 0).cloned().collect();
        NsgaResult {
            population: pop,
            pareto_front,
            evaluations,
            generations: executed,
        }
    }
}

/// Score one wave of genomes through [`IntProblem::evaluate_batch`]
/// and account every genome as one evaluation (cache hits inside a
/// batching problem do not reduce the count: `evaluations` reports
/// candidate evaluations requested, not inner-problem work performed).
///
/// # Panics
///
/// Panics if the problem's `evaluate_batch` returns the wrong number
/// of evaluations.
fn evaluate_wave<P: IntProblem>(
    problem: &P,
    genomes: Vec<Vec<u32>>,
    evaluations: &mut u64,
) -> Vec<Individual> {
    let evals = problem.evaluate_batch(&genomes);
    assert_eq!(
        evals.len(),
        genomes.len(),
        "evaluate_batch must return one Evaluation per genome"
    );
    *evaluations += genomes.len() as u64;
    genomes
        .into_iter()
        .zip(evals)
        .map(|(genes, e)| Individual::new(genes, e))
        .collect()
}

/// Binary tournament by the crowded-comparison operator.
fn tournament(pop: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].beats(&pop[b]) {
        a
    } else {
        b
    }
}

/// Sort and annotate ranks/crowding in place.
fn annotate(pop: &mut [Individual]) {
    let fronts = fast_non_dominated_sort(pop);
    for front in &fronts {
        assign_crowding(pop, front);
    }
}

/// Keep the best `mu` individuals: whole fronts while they fit, then
/// crowding-distance truncation of the spilling front.
fn select_mu(mut pop: Vec<Individual>, mu: usize) -> Vec<Individual> {
    let fronts = fast_non_dominated_sort(&mut pop);
    for front in &fronts {
        assign_crowding(&mut pop, front);
    }
    let mut selected: Vec<Individual> = Vec::with_capacity(mu);
    for front in fronts {
        if selected.len() + front.len() <= mu {
            selected.extend(front.iter().map(|&i| pop[i].clone()));
        } else {
            let mut spill: Vec<usize> = front;
            spill.sort_by(|&a, &b| {
                pop[b]
                    .crowding
                    .partial_cmp(&pop[a].crowding)
                    .expect("crowding is never NaN")
            });
            for &i in spill.iter().take(mu - selected.len()) {
                selected.push(pop[i].clone());
            }
            break;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// Minimize (x - 30)² and (x - 70)² over a single gene: the Pareto
    /// set is exactly 30..=70.
    struct TwoHumps {
        bounds: Vec<u32>,
    }

    impl IntProblem for TwoHumps {
        fn bounds(&self) -> &[u32] {
            &self.bounds
        }
        fn evaluate(&self, genes: &[u32]) -> Evaluation {
            let x = f64::from(genes[0]);
            Evaluation::feasible(vec![(x - 30.0).powi(2), (x - 70.0).powi(2)])
        }
    }

    #[test]
    fn converges_to_the_pareto_segment() {
        let problem = TwoHumps { bounds: vec![101] };
        let result = Nsga2::new(NsgaConfig {
            population: 40,
            generations: 60,
            mutation_prob: 0.2,
            ..NsgaConfig::default()
        })
        .run(&problem);
        assert!(!result.pareto_front.is_empty());
        // Every front member should be inside (or adjacent to) [30, 70].
        for ind in &result.pareto_front {
            let x = ind.genes[0];
            assert!((29..=71).contains(&x), "x = {x}");
        }
        // The front should spread across the segment, not collapse.
        let xs: Vec<u32> = result.pareto_front.iter().map(|i| i.genes[0]).collect();
        let spread = xs.iter().max().unwrap() - xs.iter().min().unwrap();
        assert!(spread >= 20, "front collapsed: {xs:?}");
    }

    #[test]
    fn runs_are_reproducible() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 16,
            generations: 10,
            ..NsgaConfig::default()
        };
        let a = Nsga2::new(cfg.clone()).run(&problem);
        let b = Nsga2::new(cfg).run(&problem);
        assert_eq!(a.population, b.population);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn seeding_injects_genomes() {
        struct CountFirstGene;
        impl IntProblem for CountFirstGene {
            fn bounds(&self) -> &[u32] {
                const B: [u32; 1] = [1000];
                &B
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                Evaluation::feasible(vec![f64::from(genes[0]), -f64::from(genes[0])])
            }
        }
        let problem = CountFirstGene;
        let mut seen_zero_gen_stats = Vec::new();
        let result = Nsga2::new(NsgaConfig {
            population: 10,
            generations: 1,
            mutation_prob: 0.0,
            crossover_prob: 0.0,
            ..NsgaConfig::default()
        })
        .run_seeded(&problem, vec![vec![999]], |s| {
            seen_zero_gen_stats.push(s.clone())
        });
        // The seeded genome minimizes objective 1; it must survive elitism.
        assert!(result.population.iter().any(|i| i.genes == vec![999]));
        assert_eq!(seen_zero_gen_stats.len(), 1);
    }

    #[test]
    fn controlled_run_stops_when_the_observer_says_so() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 10,
            generations: 50,
            ..NsgaConfig::default()
        };
        let result = Nsga2::new(cfg.clone()).run_controlled(&problem, Vec::new(), |s| {
            s.generation < 3 // continue through generations 0..=3
        });
        assert_eq!(result.generations, 4);
        assert_eq!(result.evaluations, 10 + 4 * 10);
        assert!(!result.pareto_front.is_empty());

        // The prefix of a cancelled run matches the uncancelled run.
        let mut full_gen3 = None;
        let full = Nsga2::new(cfg).run_seeded(&problem, Vec::new(), |s| {
            if s.generation == 3 {
                full_gen3 = Some(s.clone());
            }
        });
        assert_eq!(full.generations, 50);
        assert_eq!(
            full_gen3.expect("generation 3 observed").evaluations,
            result.evaluations
        );
    }

    /// Test sink: captures every snapshot in order.
    #[derive(Default)]
    struct Capture(std::cell::RefCell<Vec<SearchCheckpoint>>);

    impl CheckpointSink for Capture {
        fn save(&self, checkpoint: &SearchCheckpoint) {
            self.0.borrow_mut().push(checkpoint.clone());
        }
    }

    #[test]
    fn resume_from_every_checkpoint_matches_the_uninterrupted_run() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 12,
            generations: 9,
            ..NsgaConfig::default()
        };
        let sink = Capture::default();
        let plan = CheckpointPlan {
            every: 1,
            sink: &sink,
        };
        let baseline = Nsga2::new(cfg.clone()).run_checkpointed(
            &problem,
            Vec::new(),
            None,
            Some(plan),
            |_| true,
        );
        let checkpoints = sink.0.into_inner();
        assert_eq!(checkpoints.len(), cfg.generations);

        for cp in checkpoints {
            // Round-trip through JSON: the persisted form (with its
            // null-ed infinite crowding values) must resume exactly.
            let json = serde_json::to_string(&cp).expect("checkpoint serializes");
            let restored: SearchCheckpoint = serde_json::from_str(&json).expect("round-trips");
            restored
                .validate(&cfg, &[101])
                .expect("round-tripped checkpoint is valid");
            let resumed = Nsga2::new(cfg.clone()).run_checkpointed(
                &problem,
                Vec::new(),
                Some(restored),
                None,
                |_| true,
            );
            assert_eq!(resumed.population, baseline.population);
            assert_eq!(resumed.pareto_front, baseline.pareto_front);
            assert_eq!(resumed.evaluations, baseline.evaluations);
            assert_eq!(resumed.generations, baseline.generations);
        }
    }

    #[test]
    fn observer_stop_flushes_a_final_checkpoint() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 10,
            generations: 50,
            ..NsgaConfig::default()
        };
        // Cadence would fire at 10, 20, …; the stop after generation
        // index 2 must flush a snapshot anyway.
        let sink = Capture::default();
        let plan = CheckpointPlan {
            every: 10,
            sink: &sink,
        };
        let stopped =
            Nsga2::new(cfg.clone())
                .run_checkpointed(&problem, Vec::new(), None, Some(plan), |s| s.generation < 2);
        assert_eq!(stopped.generations, 3);
        let checkpoints = sink.0.into_inner();
        assert_eq!(checkpoints.len(), 1);
        let cp = checkpoints.into_iter().next().expect("one checkpoint");
        assert_eq!(cp.generation, 3);
        assert_eq!(cp.history.len(), 3);
        assert_eq!(cp.evaluations, stopped.evaluations);

        // Resuming the flushed snapshot completes the run identically
        // to an uninterrupted one.
        let resumed =
            Nsga2::new(cfg.clone())
                .run_checkpointed(&problem, Vec::new(), Some(cp), None, |_| true);
        let uninterrupted = Nsga2::new(cfg).run(&problem);
        assert_eq!(resumed.population, uninterrupted.population);
        assert_eq!(resumed.evaluations, uninterrupted.evaluations);
    }

    #[test]
    fn the_final_generation_flushes_a_checkpoint() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 10,
            generations: 7,
            ..NsgaConfig::default()
        };
        // `every: 3` fires at generations 3 and 6; generation 7 is the
        // final one and flushes regardless of cadence.
        let sink = Capture::default();
        let plan = CheckpointPlan {
            every: 3,
            sink: &sink,
        };
        let _ = Nsga2::new(cfg.clone()).run_checkpointed(
            &problem,
            Vec::new(),
            None,
            Some(plan),
            |_| true,
        );
        let generations: Vec<usize> = sink.0.into_inner().iter().map(|c| c.generation).collect();
        assert_eq!(generations, vec![3, 6, 7]);
    }

    #[test]
    fn validate_rejects_torn_or_mismatched_checkpoints() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 8,
            generations: 6,
            ..NsgaConfig::default()
        };
        let sink = Capture::default();
        let plan = CheckpointPlan {
            every: 2,
            sink: &sink,
        };
        let _ = Nsga2::new(cfg.clone()).run_checkpointed(
            &problem,
            Vec::new(),
            None,
            Some(plan),
            |_| true,
        );
        let cp = sink.0.into_inner().into_iter().next().expect("checkpoint");
        assert!(cp.validate(&cfg, &[101]).is_ok());

        let mut other_cfg = cfg.clone();
        other_cfg.seed ^= 1;
        assert!(cp.validate(&other_cfg, &[101]).is_err());
        assert!(cp.validate(&cfg, &[101, 101]).is_err());
        assert!(cp.validate(&cfg, &[5]).is_err());

        let mut torn = cp.clone();
        torn.population.pop();
        assert!(torn.validate(&cfg, &[101]).is_err());

        let mut torn = cp.clone();
        torn.history.pop();
        assert!(torn.validate(&cfg, &[101]).is_err());

        let mut torn = cp.clone();
        torn.evaluations += 1;
        assert!(torn.validate(&cfg, &[101]).is_err());

        let mut torn = cp;
        torn.rng_state = [0; 4];
        assert!(torn.validate(&cfg, &[101]).is_err());
    }

    #[test]
    fn evaluation_budget_is_accounted() {
        let problem = TwoHumps { bounds: vec![101] };
        let result = Nsga2::new(NsgaConfig {
            population: 10,
            generations: 5,
            ..NsgaConfig::default()
        })
        .run(&problem);
        // init + generations * population.
        assert_eq!(result.evaluations, 10 + 5 * 10);
    }

    #[test]
    fn every_wave_goes_through_evaluate_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counting {
            bounds: Vec<u32>,
            batches: AtomicUsize,
            singles: AtomicUsize,
        }
        impl IntProblem for Counting {
            fn bounds(&self) -> &[u32] {
                &self.bounds
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                self.singles.fetch_add(1, Ordering::Relaxed);
                let x = f64::from(genes[0]);
                Evaluation::feasible(vec![x, 100.0 - x])
            }
            fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
                self.batches.fetch_add(1, Ordering::Relaxed);
                genomes.iter().map(|g| self.evaluate(g)).collect()
            }
        }

        let problem = Counting {
            bounds: vec![101],
            batches: AtomicUsize::new(0),
            singles: AtomicUsize::new(0),
        };
        let result = Nsga2::new(NsgaConfig {
            population: 8,
            generations: 5,
            ..NsgaConfig::default()
        })
        .run(&problem);
        // One batch per wave: the initial population plus one per
        // generation — never one call per genome.
        assert_eq!(problem.batches.load(Ordering::Relaxed), 1 + 5);
        assert_eq!(
            problem.singles.load(Ordering::Relaxed) as u64,
            result.evaluations
        );
    }

    #[test]
    fn infeasible_solutions_are_purged_when_feasible_exist() {
        struct Constrained;
        impl IntProblem for Constrained {
            fn bounds(&self) -> &[u32] {
                const B: [u32; 1] = [100];
                &B
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                let x = f64::from(genes[0]);
                if genes[0] < 50 {
                    Evaluation::infeasible(vec![x, 100.0 - x], 50.0 - x)
                } else {
                    Evaluation::feasible(vec![x, 100.0 - x])
                }
            }
        }
        let result = Nsga2::new(NsgaConfig {
            population: 20,
            generations: 30,
            mutation_prob: 0.3,
            ..NsgaConfig::default()
        })
        .run(&Constrained);
        for ind in &result.pareto_front {
            assert!(
                ind.evaluation.is_feasible(),
                "infeasible on front: {:?}",
                ind.genes
            );
        }
    }
}
