//! The NSGA-II main loop.
//!
//! Elitist (μ+λ) evolution with fast non-dominated sorting, crowding-
//! distance truncation and binary tournaments, as in Deb et al. (2002)
//! — the algorithm the paper picked for its "simplicity, low
//! computational complexity, and enhanced convergence" (§IV-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::individual::Individual;
use crate::operators::{crossover, mutate_mixed, random_genome, CrossoverKind};
use crate::problem::IntProblem;
use crate::sort::{assign_crowding, fast_non_dominated_sort};

/// NSGA-II hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsgaConfig {
    /// Population size μ (kept constant across generations).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability that a mating pair undergoes crossover.
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Fraction of mutations that are ±1 creep steps instead of uniform
    /// resets (see [`crate::operators::mutate_mixed`]).
    pub creep_fraction: f64,
    /// Crossover flavour.
    pub crossover_kind: CrossoverKind,
    /// RNG seed: runs are fully reproducible.
    pub seed: u64,
}

impl Default for NsgaConfig {
    /// The paper's operator rates: crossover 0.7, mutation 0.2
    /// (interpreted per mating / scaled per gene as is standard), with
    /// a moderate default budget.
    fn default() -> Self {
        Self {
            population: 100,
            generations: 100,
            crossover_prob: 0.7,
            mutation_prob: 0.02,
            creep_fraction: 0.5,
            crossover_kind: CrossoverKind::Uniform,
            seed: 0,
        }
    }
}

/// Per-generation progress snapshot handed to the observer callback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Size of the current first front.
    pub front_size: usize,
    /// Best (minimum) value of each objective in the population.
    pub best_objectives: Vec<f64>,
    /// Number of evaluations performed so far.
    pub evaluations: u64,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsgaResult {
    /// Final population (rank/crowding annotated).
    pub population: Vec<Individual>,
    /// The final first (non-dominated) front.
    pub pareto_front: Vec<Individual>,
    /// Total candidate evaluations, including the initial population.
    pub evaluations: u64,
    /// Generations executed.
    pub generations: usize,
}

/// The NSGA-II optimizer.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: NsgaConfig,
}

impl Nsga2 {
    /// Optimizer with the given configuration.
    #[must_use]
    pub fn new(config: NsgaConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NsgaConfig {
        &self.config
    }

    /// Run the optimizer with a randomly initialized population.
    pub fn run<P: IntProblem>(&self, problem: &P) -> NsgaResult {
        self.run_seeded(problem, Vec::new(), |_| {})
    }

    /// Run with an initial (possibly partial) seed population and a
    /// per-generation observer.
    ///
    /// `seeds` genomes are injected verbatim (truncated to the
    /// population size); the remainder is drawn uniformly — this is the
    /// hook the paper's "doped" initialization uses (§IV-A: ~10%
    /// nearly non-approximate chromosomes).
    ///
    /// # Panics
    ///
    /// Panics if the population size is zero or a seed genome has the
    /// wrong length.
    pub fn run_seeded<P: IntProblem, F: FnMut(&GenerationStats)>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        mut observer: F,
    ) -> NsgaResult {
        self.run_controlled(problem, seeds, |stats| {
            observer(stats);
            true
        })
    }

    /// Like [`run_seeded`](Self::run_seeded), but the observer also
    /// steers the run: returning `false` stops the evolution after the
    /// current generation (cooperative cancellation).
    ///
    /// The result's `generations` field records how many generations
    /// actually executed; up to that point the run is bit-identical to
    /// an uncancelled one.
    ///
    /// # Panics
    ///
    /// Panics if the population size is zero or a seed genome has the
    /// wrong length.
    pub fn run_controlled<P: IntProblem, F: FnMut(&GenerationStats) -> bool>(
        &self,
        problem: &P,
        seeds: Vec<Vec<u32>>,
        mut observer: F,
    ) -> NsgaResult {
        let cfg = &self.config;
        assert!(cfg.population >= 2, "population must be at least 2");
        let bounds = problem.bounds().to_vec();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c62_272e_07bb_0142);
        let mut evaluations = 0u64;

        // Initial population: seeds first, random fill after. All
        // genomes are generated first, then scored as one batch — the
        // RNG stream (and therefore the run) is identical to scoring
        // them one by one, but problems with a fast bulk path (see
        // [`IntProblem::evaluate_batch`]) get the whole wave at once.
        let mut genomes: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
        for genes in seeds.into_iter().take(cfg.population) {
            assert_eq!(genes.len(), bounds.len(), "seed genome length mismatch");
            genomes.push(genes);
        }
        while genomes.len() < cfg.population {
            genomes.push(random_genome(&bounds, &mut rng));
        }
        let mut pop = evaluate_wave(problem, genomes, &mut evaluations);
        annotate(&mut pop);

        let mut executed = 0usize;
        for generation in 0..cfg.generations {
            // Offspring via binary tournaments + crossover + mutation;
            // the wave is bred first, then evaluated as one batch.
            let mut offspring_genomes: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
            while offspring_genomes.len() < cfg.population {
                let p1 = tournament(&pop, &mut rng);
                let p2 = tournament(&pop, &mut rng);
                let (mut c1, mut c2) = if rng.gen_bool(cfg.crossover_prob.clamp(0.0, 1.0)) {
                    crossover(cfg.crossover_kind, &pop[p1].genes, &pop[p2].genes, &mut rng)
                } else {
                    (pop[p1].genes.clone(), pop[p2].genes.clone())
                };
                mutate_mixed(
                    &mut c1,
                    &bounds,
                    cfg.mutation_prob,
                    cfg.creep_fraction,
                    &mut rng,
                );
                mutate_mixed(
                    &mut c2,
                    &bounds,
                    cfg.mutation_prob,
                    cfg.creep_fraction,
                    &mut rng,
                );
                offspring_genomes.push(c1);
                if offspring_genomes.len() < cfg.population {
                    offspring_genomes.push(c2);
                }
            }
            let offspring = evaluate_wave(problem, offspring_genomes, &mut evaluations);

            // Environmental selection over parents + offspring.
            pop.extend(offspring);
            pop = select_mu(pop, cfg.population);

            let front_size = pop.iter().filter(|i| i.rank == 0).count();
            let m = pop[0].evaluation.objectives.len();
            let best_objectives: Vec<f64> = (0..m)
                .map(|obj| {
                    pop.iter()
                        .map(|i| i.evaluation.objectives[obj])
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            executed = generation + 1;
            let keep_going = observer(&GenerationStats {
                generation,
                front_size,
                best_objectives,
                evaluations,
            });
            if !keep_going {
                break;
            }
        }

        let pareto_front: Vec<Individual> = pop.iter().filter(|i| i.rank == 0).cloned().collect();
        NsgaResult {
            population: pop,
            pareto_front,
            evaluations,
            generations: executed,
        }
    }
}

/// Score one wave of genomes through [`IntProblem::evaluate_batch`]
/// and account every genome as one evaluation (cache hits inside a
/// batching problem do not reduce the count: `evaluations` reports
/// candidate evaluations requested, not inner-problem work performed).
///
/// # Panics
///
/// Panics if the problem's `evaluate_batch` returns the wrong number
/// of evaluations.
fn evaluate_wave<P: IntProblem>(
    problem: &P,
    genomes: Vec<Vec<u32>>,
    evaluations: &mut u64,
) -> Vec<Individual> {
    let evals = problem.evaluate_batch(&genomes);
    assert_eq!(
        evals.len(),
        genomes.len(),
        "evaluate_batch must return one Evaluation per genome"
    );
    *evaluations += genomes.len() as u64;
    genomes
        .into_iter()
        .zip(evals)
        .map(|(genes, e)| Individual::new(genes, e))
        .collect()
}

/// Binary tournament by the crowded-comparison operator.
fn tournament(pop: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].beats(&pop[b]) {
        a
    } else {
        b
    }
}

/// Sort and annotate ranks/crowding in place.
fn annotate(pop: &mut [Individual]) {
    let fronts = fast_non_dominated_sort(pop);
    for front in &fronts {
        assign_crowding(pop, front);
    }
}

/// Keep the best `mu` individuals: whole fronts while they fit, then
/// crowding-distance truncation of the spilling front.
fn select_mu(mut pop: Vec<Individual>, mu: usize) -> Vec<Individual> {
    let fronts = fast_non_dominated_sort(&mut pop);
    for front in &fronts {
        assign_crowding(&mut pop, front);
    }
    let mut selected: Vec<Individual> = Vec::with_capacity(mu);
    for front in fronts {
        if selected.len() + front.len() <= mu {
            selected.extend(front.iter().map(|&i| pop[i].clone()));
        } else {
            let mut spill: Vec<usize> = front;
            spill.sort_by(|&a, &b| {
                pop[b]
                    .crowding
                    .partial_cmp(&pop[a].crowding)
                    .expect("crowding is never NaN")
            });
            for &i in spill.iter().take(mu - selected.len()) {
                selected.push(pop[i].clone());
            }
            break;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// Minimize (x - 30)² and (x - 70)² over a single gene: the Pareto
    /// set is exactly 30..=70.
    struct TwoHumps {
        bounds: Vec<u32>,
    }

    impl IntProblem for TwoHumps {
        fn bounds(&self) -> &[u32] {
            &self.bounds
        }
        fn evaluate(&self, genes: &[u32]) -> Evaluation {
            let x = f64::from(genes[0]);
            Evaluation::feasible(vec![(x - 30.0).powi(2), (x - 70.0).powi(2)])
        }
    }

    #[test]
    fn converges_to_the_pareto_segment() {
        let problem = TwoHumps { bounds: vec![101] };
        let result = Nsga2::new(NsgaConfig {
            population: 40,
            generations: 60,
            mutation_prob: 0.2,
            ..NsgaConfig::default()
        })
        .run(&problem);
        assert!(!result.pareto_front.is_empty());
        // Every front member should be inside (or adjacent to) [30, 70].
        for ind in &result.pareto_front {
            let x = ind.genes[0];
            assert!((29..=71).contains(&x), "x = {x}");
        }
        // The front should spread across the segment, not collapse.
        let xs: Vec<u32> = result.pareto_front.iter().map(|i| i.genes[0]).collect();
        let spread = xs.iter().max().unwrap() - xs.iter().min().unwrap();
        assert!(spread >= 20, "front collapsed: {xs:?}");
    }

    #[test]
    fn runs_are_reproducible() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 16,
            generations: 10,
            ..NsgaConfig::default()
        };
        let a = Nsga2::new(cfg.clone()).run(&problem);
        let b = Nsga2::new(cfg).run(&problem);
        assert_eq!(a.population, b.population);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn seeding_injects_genomes() {
        struct CountFirstGene;
        impl IntProblem for CountFirstGene {
            fn bounds(&self) -> &[u32] {
                const B: [u32; 1] = [1000];
                &B
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                Evaluation::feasible(vec![f64::from(genes[0]), -f64::from(genes[0])])
            }
        }
        let problem = CountFirstGene;
        let mut seen_zero_gen_stats = Vec::new();
        let result = Nsga2::new(NsgaConfig {
            population: 10,
            generations: 1,
            mutation_prob: 0.0,
            crossover_prob: 0.0,
            ..NsgaConfig::default()
        })
        .run_seeded(&problem, vec![vec![999]], |s| {
            seen_zero_gen_stats.push(s.clone())
        });
        // The seeded genome minimizes objective 1; it must survive elitism.
        assert!(result.population.iter().any(|i| i.genes == vec![999]));
        assert_eq!(seen_zero_gen_stats.len(), 1);
    }

    #[test]
    fn controlled_run_stops_when_the_observer_says_so() {
        let problem = TwoHumps { bounds: vec![101] };
        let cfg = NsgaConfig {
            population: 10,
            generations: 50,
            ..NsgaConfig::default()
        };
        let result = Nsga2::new(cfg.clone()).run_controlled(&problem, Vec::new(), |s| {
            s.generation < 3 // continue through generations 0..=3
        });
        assert_eq!(result.generations, 4);
        assert_eq!(result.evaluations, 10 + 4 * 10);
        assert!(!result.pareto_front.is_empty());

        // The prefix of a cancelled run matches the uncancelled run.
        let mut full_gen3 = None;
        let full = Nsga2::new(cfg).run_seeded(&problem, Vec::new(), |s| {
            if s.generation == 3 {
                full_gen3 = Some(s.clone());
            }
        });
        assert_eq!(full.generations, 50);
        assert_eq!(
            full_gen3.expect("generation 3 observed").evaluations,
            result.evaluations
        );
    }

    #[test]
    fn evaluation_budget_is_accounted() {
        let problem = TwoHumps { bounds: vec![101] };
        let result = Nsga2::new(NsgaConfig {
            population: 10,
            generations: 5,
            ..NsgaConfig::default()
        })
        .run(&problem);
        // init + generations * population.
        assert_eq!(result.evaluations, 10 + 5 * 10);
    }

    #[test]
    fn every_wave_goes_through_evaluate_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counting {
            bounds: Vec<u32>,
            batches: AtomicUsize,
            singles: AtomicUsize,
        }
        impl IntProblem for Counting {
            fn bounds(&self) -> &[u32] {
                &self.bounds
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                self.singles.fetch_add(1, Ordering::Relaxed);
                let x = f64::from(genes[0]);
                Evaluation::feasible(vec![x, 100.0 - x])
            }
            fn evaluate_batch(&self, genomes: &[Vec<u32>]) -> Vec<Evaluation> {
                self.batches.fetch_add(1, Ordering::Relaxed);
                genomes.iter().map(|g| self.evaluate(g)).collect()
            }
        }

        let problem = Counting {
            bounds: vec![101],
            batches: AtomicUsize::new(0),
            singles: AtomicUsize::new(0),
        };
        let result = Nsga2::new(NsgaConfig {
            population: 8,
            generations: 5,
            ..NsgaConfig::default()
        })
        .run(&problem);
        // One batch per wave: the initial population plus one per
        // generation — never one call per genome.
        assert_eq!(problem.batches.load(Ordering::Relaxed), 1 + 5);
        assert_eq!(
            problem.singles.load(Ordering::Relaxed) as u64,
            result.evaluations
        );
    }

    #[test]
    fn infeasible_solutions_are_purged_when_feasible_exist() {
        struct Constrained;
        impl IntProblem for Constrained {
            fn bounds(&self) -> &[u32] {
                const B: [u32; 1] = [100];
                &B
            }
            fn evaluate(&self, genes: &[u32]) -> Evaluation {
                let x = f64::from(genes[0]);
                if genes[0] < 50 {
                    Evaluation::infeasible(vec![x, 100.0 - x], 50.0 - x)
                } else {
                    Evaluation::feasible(vec![x, 100.0 - x])
                }
            }
        }
        let result = Nsga2::new(NsgaConfig {
            population: 20,
            generations: 30,
            mutation_prob: 0.3,
            ..NsgaConfig::default()
        })
        .run(&Constrained);
        for ind in &result.pareto_front {
            assert!(
                ind.evaluation.is_feasible(),
                "infeasible on front: {:?}",
                ind.genes
            );
        }
    }
}
