//! Scenario queries over stored designs: microsecond re-costing
//! through the memoized fast cost model.
//!
//! A [`ScenarioQuery`] owns one [`FastCostModel`] for one
//! [`CostScenario`]. Costing a [`DesignRecord`] reconstructs the
//! hardware spec from the stored network and prices it exactly like
//! the live search would — same lowering, same model — so stored
//! answers are bit-equal to live ones. The model's per-neuron memo is
//! shared across every record costed through the same query, which is
//! what makes grid sweeps over a populated store a microseconds-scale
//! operation instead of a GA re-run.
//!
//! Queries are pure reads: nothing here writes to the store.

use pe_hw::{CostModel, CostScenario, FastCostModel, HardwareReport, HwCost};

use crate::record::DesignRecord;

/// A stored design priced under one scenario.
#[derive(Debug, Clone)]
pub struct CostedRecord<'a> {
    /// The stored design.
    pub record: &'a DesignRecord,
    /// Full hardware report under the query's scenario.
    pub report: HardwareReport,
    /// The scalar cost summary of [`report`](Self::report).
    pub cost: HwCost,
}

/// Re-costs stored designs under one [`CostScenario`].
///
/// # Example
///
/// Populate a store with two designs, then answer a budget query under
/// a scaled supply without touching the GA:
///
/// ```
/// use pe_hw::{CostScenario, TechLibrary};
/// use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight};
/// use pe_store::{DesignRecord, DesignStore, ScenarioQuery, StoreWriter};
///
/// fn design(masks: [u16; 3], accuracy: f64, area: f64) -> DesignRecord {
///     let weight = |mask| AxWeight { mask, shift: 2, negative: false };
///     let mlp = AxMlp {
///         layers: vec![AxLayer {
///             input_bits: 4,
///             neurons: vec![AxNeuron {
///                 weights: masks.map(weight).to_vec(),
///                 bias: 1,
///             }],
///             qrelu: None,
///         }],
///     };
///     DesignRecord::new("demo", mlp, accuracy, area)
/// }
///
/// // Ingest during (or after) a search ...
/// let path = std::env::temp_dir().join(format!("pe-store-query-doc-{}.jsonl", std::process::id()));
/// let _ = std::fs::remove_file(&path);
/// let writer = StoreWriter::open(&path).unwrap();
/// writer.ingest(design([0b1111, 0b1101, 0b1011], 0.92, 40.0)).unwrap();
/// writer.ingest(design([0b0001, 0, 0], 0.80, 4.0)).unwrap();
/// drop(writer);
///
/// // ... then later, under any scenario, query without re-training.
/// let store = DesignStore::load(&path).unwrap();
/// let scenario = CostScenario::nominal(TechLibrary::egfet()).at_supply(0.8);
/// let query = ScenarioQuery::new(scenario);
///
/// // Both designs trade off against each other, so the front keeps both.
/// let front = query.non_dominated(store.dataset("demo"));
/// assert_eq!(front.len(), 2);
///
/// // Within a 15% accuracy-loss budget the sparse design suffices —
/// // and wins on area.
/// let best = query
///     .best_within_budget(store.dataset("demo"), 0.92, 0.15, None)
///     .unwrap();
/// assert_eq!(best.record.query_accuracy(), 0.80);
/// let _ = std::fs::remove_file(&path);
/// ```
#[derive(Debug)]
pub struct ScenarioQuery {
    model: FastCostModel,
}

impl ScenarioQuery {
    /// A query engine for `scenario`.
    #[must_use]
    pub fn new(scenario: CostScenario) -> Self {
        Self {
            model: FastCostModel::new(scenario),
        }
    }

    /// The scenario designs are priced under.
    #[must_use]
    pub fn scenario(&self) -> &CostScenario {
        self.model.scenario()
    }

    /// Price one stored design: reconstruct its hardware spec and run
    /// it through the fast cost model — bit-equal to a live pass over
    /// the same network.
    #[must_use]
    pub fn recost<'a>(&self, record: &'a DesignRecord) -> CostedRecord<'a> {
        let spec = record.hardware_spec(format!("{}_{:016x}", record.dataset, record.fingerprint));
        let report = self.model.report(&spec);
        let cost = HwCost::of(&report, &self.model.scenario().tech);
        CostedRecord {
            record,
            report,
            cost,
        }
    }

    /// Price every record, in input order.
    pub fn costed<'a>(
        &self,
        records: impl IntoIterator<Item = &'a DesignRecord>,
    ) -> Vec<CostedRecord<'a>> {
        records.into_iter().map(|r| self.recost(r)).collect()
    }

    /// The non-dominated designs under this scenario — maximize
    /// [`DesignRecord::query_accuracy`], minimize area — ascending in
    /// area.
    pub fn non_dominated<'a>(
        &self,
        records: impl IntoIterator<Item = &'a DesignRecord>,
    ) -> Vec<CostedRecord<'a>> {
        let costed = self.costed(records);
        let mut front: Vec<CostedRecord<'a>> = costed
            .iter()
            .filter(|c| !costed.iter().any(|other| dominates(other, c)))
            .cloned()
            .collect();
        front.sort_by(|a, b| a.report.area_cm2.total_cmp(&b.report.area_cm2));
        front
    }

    /// The smallest design meeting an accuracy floor and an optional
    /// power budget — the same rule `printed-axc`'s
    /// `select_within_budgets` applies to a live front (epsilon
    /// included).
    pub fn best_within_budget<'a>(
        &self,
        records: impl IntoIterator<Item = &'a DesignRecord>,
        baseline_accuracy: f64,
        max_loss: f64,
        power_budget_mw: Option<f64>,
    ) -> Option<CostedRecord<'a>> {
        self.costed(records)
            .into_iter()
            .filter(|c| c.record.query_accuracy() + 1e-12 >= baseline_accuracy - max_loss)
            .filter(|c| power_budget_mw.is_none_or(|budget| c.report.power_mw <= budget))
            .min_by(|a, b| a.report.area_cm2.total_cmp(&b.report.area_cm2))
    }
}

/// Strict Pareto dominance on (query accuracy ↑, area ↓).
fn dominates(a: &CostedRecord<'_>, b: &CostedRecord<'_>) -> bool {
    let acc_a = a.record.query_accuracy();
    let acc_b = b.record.query_accuracy();
    let better_somewhere = acc_a > acc_b || a.report.area_cm2 < b.report.area_cm2;
    acc_a >= acc_b && a.report.area_cm2 <= b.report.area_cm2 && better_somewhere
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_hw::TechLibrary;
    use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};

    fn mlp(mask: u16, bias: i32) -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask,
                                shift: 3,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0b0101,
                                shift: 1,
                                negative: true,
                            },
                        ],
                        bias,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0b0011,
                                shift: 2,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false,
                            },
                        ],
                        bias: -bias,
                    },
                ],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 2,
                }),
            }],
        }
    }

    fn record(mask: u16, accuracy: f64) -> DesignRecord {
        DesignRecord::new("demo", mlp(mask, 7), accuracy, f64::from(mask))
    }

    #[test]
    fn recost_matches_a_live_fast_model_pass() {
        for supply in [1.0, 0.8, 0.6] {
            let scenario = CostScenario::nominal(TechLibrary::egfet()).at_supply(supply);
            let query = ScenarioQuery::new(scenario.clone());
            let r = record(0b1110, 0.9);
            let stored = query.recost(&r);

            let live_model = FastCostModel::new(scenario);
            let spec = r.hardware_spec(format!("{}_{:016x}", r.dataset, r.fingerprint));
            let live_report = live_model.report(&spec);
            let live_cost = HwCost::of(&live_report, &live_model.scenario().tech);
            assert_eq!(stored.cost, live_cost, "supply {supply}");
            assert_eq!(stored.report.area_cm2, live_report.area_cm2);
            assert_eq!(stored.report.power_mw, live_report.power_mw);
        }
    }

    #[test]
    fn non_dominated_drops_dominated_designs() {
        // Same network, lower claimed accuracy: strictly dominated.
        let good = record(0b1110, 0.95);
        let mut bad = record(0b1110, 0.95);
        bad.train_accuracy = 0.60;
        // Recompute the dedup identity is irrelevant here — the query
        // layer treats the slice as given.
        let sparse = record(0b0010, 0.70);
        let query = ScenarioQuery::new(CostScenario::nominal(TechLibrary::egfet()));
        let front = query.non_dominated([&good, &bad, &sparse]);
        assert_eq!(front.len(), 2);
        assert!(front[0].report.area_cm2 <= front[1].report.area_cm2);
        assert!(front.iter().all(|c| c.record.train_accuracy != 0.60));
    }

    #[test]
    fn best_within_budget_applies_floor_and_power_cap() {
        let big = record(0b1111, 0.95);
        let small = record(0b0001, 0.80);
        let query = ScenarioQuery::new(CostScenario::nominal(TechLibrary::egfet()));
        // Tight accuracy budget: only the accurate design qualifies.
        let strict = query
            .best_within_budget([&big, &small], 0.95, 0.05, None)
            .expect("big design qualifies");
        assert_eq!(strict.record.query_accuracy(), 0.95);
        // Loose budget: the sparse design wins on area.
        let loose = query
            .best_within_budget([&big, &small], 0.95, 0.20, None)
            .expect("small design qualifies");
        assert_eq!(loose.record.query_accuracy(), 0.80);
        // An impossible power budget filters everything out.
        assert!(query
            .best_within_budget([&big, &small], 0.95, 0.20, Some(0.0))
            .is_none());
    }
}
