//! Deterministic fault injection for crash-recovery drills.
//!
//! The `PE_FAULT` environment variable carries a comma-separated plan
//! of rules, each `action@site:trigger`:
//!
//! * `action` — `kill` (abort the process, leaving whatever bytes the
//!   site managed to write) or `err` (surface an injected I/O error /
//!   panic through the site's normal failure path).
//! * `site` — a named instrumentation point: [`SITE_ATOMIC_WRITE`],
//!   [`SITE_STORE_APPEND`], [`SITE_SEARCHED_GENERATION`],
//!   [`SITE_EVAL_BATCH`], [`SITE_ISLAND_MIGRATION`].
//! * `trigger` — which arrival at the site fires the rule: a literal
//!   1-based occurrence (`3`), or a seeded draw `s<seed>/<span>` that
//!   picks one occurrence uniformly from `1..=span`. The draw is
//!   domain-separated by site name (like the variation model's
//!   `trial_seed`), so one seed lands on a different, reproducible
//!   occurrence at every site.
//!
//! Example: `PE_FAULT=kill@searched_generation:s7/23` kills the
//! process at the seed-7 draw over the first 23 GA generations —
//! exactly the same generation every run, different per seed.
//!
//! Instrumented code calls [`check`] at each site and honours the
//! returned [`FaultAction`]. Without `PE_FAULT` the check is one
//! relaxed atomic load — the instrumentation is free in production.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What an armed fault rule asks the site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the process on the spot (a crash drill: no destructors,
    /// no flushes — like SIGKILL).
    Kill,
    /// Fail through the site's normal error path (an injected I/O
    /// error for write sites; a panic for evaluation sites).
    Err,
}

/// Site name: the temp-file write inside [`crate::io::atomic_write`].
pub const SITE_ATOMIC_WRITE: &str = "atomic_write";
/// Site name: the JSONL append inside [`crate::StoreWriter::ingest`].
pub const SITE_STORE_APPEND: &str = "store_append";
/// Site name: the end of one GA generation of the search stage.
pub const SITE_SEARCHED_GENERATION: &str = "searched_generation";
/// Site name: one batch evaluation wave of the search stage.
pub const SITE_EVAL_BATCH: &str = "eval_batch";
/// Site name: an island-model migration barrier, right before the
/// elite exchange and its epoch checkpoint.
pub const SITE_ISLAND_MIGRATION: &str = "island_migration";

/// One parsed `action@site:trigger` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Rule {
    action: FaultAction,
    site: String,
    /// 1-based arrival at the site that fires this rule.
    occurrence: u64,
}

/// A parsed `PE_FAULT` plan: which arrival at which site does what.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parse a plan from `PE_FAULT` syntax.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// rule.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (action, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault rule `{part}`: expected action@site:trigger"))?;
            let action = match action {
                "kill" => FaultAction::Kill,
                "err" => FaultAction::Err,
                other => return Err(format!("fault rule `{part}`: unknown action `{other}`")),
            };
            let (site, trigger) = rest
                .split_once(':')
                .ok_or_else(|| format!("fault rule `{part}`: expected action@site:trigger"))?;
            if site.is_empty() {
                return Err(format!("fault rule `{part}`: empty site"));
            }
            let occurrence = if let Some(seeded) = trigger.strip_prefix('s') {
                let (seed, span) = seeded
                    .split_once('/')
                    .ok_or_else(|| format!("fault rule `{part}`: expected s<seed>/<span>"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("fault rule `{part}`: bad seed `{seed}`"))?;
                let span: u64 = span
                    .parse()
                    .map_err(|_| format!("fault rule `{part}`: bad span `{span}`"))?;
                if span == 0 {
                    return Err(format!("fault rule `{part}`: span must be positive"));
                }
                seeded_occurrence(seed, site, span)
            } else {
                let n: u64 = trigger
                    .parse()
                    .map_err(|_| format!("fault rule `{part}`: bad occurrence `{trigger}`"))?;
                if n == 0 {
                    return Err(format!("fault rule `{part}`: occurrences are 1-based"));
                }
                n
            };
            rules.push(Rule {
                action,
                site: site.to_string(),
                occurrence,
            });
        }
        Ok(FaultPlan { rules })
    }

    /// Whether the plan has any rules at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// What (if anything) fires at the `occurrence`-th arrival at
    /// `site`. Pure: does not touch the global arrival counters.
    #[must_use]
    pub fn decide(&self, site: &str, occurrence: u64) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|r| r.site == site && r.occurrence == occurrence)
            .map(|r| r.action)
    }
}

/// The seeded occurrence draw: SplitMix64 over the seed XOR the
/// FNV-1a hash of the site name, reduced to `1..=span`. Domain
/// separation by site means one seed picks an independent (but
/// reproducible) occurrence at every site.
#[must_use]
pub fn seeded_occurrence(seed: u64, site: &str, span: u64) -> u64 {
    splitmix64(seed ^ fnv1a64(site.as_bytes())) % span + 1
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The process-wide plan parsed from `PE_FAULT` (once), plus per-site
/// arrival counters.
struct Injector {
    plan: FaultPlan,
    arrivals: Mutex<HashMap<String, u64>>,
}

fn injector() -> &'static Option<Injector> {
    static INJECTOR: OnceLock<Option<Injector>> = OnceLock::new();
    INJECTOR.get_or_init(|| {
        let text = std::env::var("PE_FAULT").ok()?;
        match FaultPlan::parse(&text) {
            Ok(plan) if !plan.is_empty() => Some(Injector {
                plan,
                arrivals: Mutex::new(HashMap::new()),
            }),
            Ok(_) => None,
            Err(reason) => {
                eprintln!("warning: PE_FAULT ignored: {reason}");
                None
            }
        }
    })
}

/// Record one arrival at `site` and return the action to honour, if a
/// `PE_FAULT` rule fires on this occurrence. Without `PE_FAULT` this
/// never fires and costs one initialization check.
#[must_use]
pub fn check(site: &str) -> Option<FaultAction> {
    let injector = injector().as_ref()?;
    let mut arrivals = injector
        .arrivals
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let count = arrivals.entry(site.to_string()).or_insert(0);
    *count += 1;
    injector.plan.decide(site, *count)
}

/// Abort the process immediately — the `kill` action's endpoint. No
/// unwinding, no destructors, no buffered-write flushes: the closest
/// safe-Rust equivalent of being SIGKILLed.
pub fn kill_now() -> ! {
    std::process::abort()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_and_seeded_triggers() {
        let plan = FaultPlan::parse("kill@store_append:3,err@atomic_write:s9/40").expect("parses");
        assert_eq!(plan.decide(SITE_STORE_APPEND, 3), Some(FaultAction::Kill));
        assert_eq!(plan.decide(SITE_STORE_APPEND, 2), None);
        let occurrence = seeded_occurrence(9, SITE_ATOMIC_WRITE, 40);
        assert!((1..=40).contains(&occurrence));
        assert_eq!(
            plan.decide(SITE_ATOMIC_WRITE, occurrence),
            Some(FaultAction::Err)
        );
    }

    #[test]
    fn empty_and_blank_plans_have_no_rules() {
        assert!(FaultPlan::parse("").expect("parses").is_empty());
        assert!(FaultPlan::parse(" , ").expect("parses").is_empty());
    }

    #[test]
    fn malformed_rules_are_rejected() {
        for bad in [
            "boom@store_append:1",
            "kill@store_append",
            "kill@:1",
            "kill@store_append:0",
            "kill@store_append:s5",
            "kill@store_append:s5/0",
            "kill@store_append:many",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn seeded_occurrences_are_domain_separated_and_reproducible() {
        let a = seeded_occurrence(7, SITE_STORE_APPEND, 1000);
        assert_eq!(a, seeded_occurrence(7, SITE_STORE_APPEND, 1000));
        let b = seeded_occurrence(7, SITE_ATOMIC_WRITE, 1000);
        assert_ne!(a, b, "sites draw independent occurrences");
        // The draw covers the whole span across seeds.
        let draws: std::collections::HashSet<u64> = (0..64)
            .map(|seed| seeded_occurrence(seed, SITE_EVAL_BATCH, 4))
            .collect();
        assert_eq!(draws.len(), 4);
    }
}
