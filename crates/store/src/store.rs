//! The persistence layer: an append-only ingest writer and a read-only
//! query snapshot over one store file.
//!
//! # On-disk format
//!
//! One [`DesignRecord`] per line, `serde_json`-encoded (JSONL). The
//! format is append-friendly — ingest never rewrites earlier bytes —
//! and mergeable: multiple lines may share a `(dataset, fingerprint)`
//! key, with later lines filling in the optional fields of earlier
//! ones (test accuracy after a front evaluation, the `selected` flag
//! after the pipeline's select stage). Loading replays the merge, so
//! the in-memory index holds exactly one record per unique design
//! regardless of how its information arrived.
//!
//! Corrupt input — a truncated final line after a crash, edited bytes,
//! a fingerprint that no longer matches its network — surfaces as a
//! [`StoreError`], never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::fault::{self, FaultAction, SITE_STORE_APPEND};
use crate::record::{fingerprint_of, DesignRecord};

/// Why a store file could not be opened, read or appended to.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying file operation failed.
    Io {
        /// The store file involved.
        path: PathBuf,
        /// The OS error description.
        reason: String,
    },
    /// A line of the store file is not a valid record (truncated
    /// write, edited bytes, or a fingerprint/network mismatch).
    Corrupt {
        /// The store file involved.
        path: PathBuf,
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, reason } => {
                write!(f, "design store {}: {reason}", path.display())
            }
            StoreError::Corrupt { path, line, reason } => {
                write!(
                    f,
                    "design store {} is corrupt at line {line}: {reason}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Lifetime ingest counters of a [`StoreWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Unique designs inserted (new `(dataset, fingerprint)` keys).
    pub ingested: u64,
    /// Ingest calls that hit an already-stored design (including
    /// annotation passes that only filled in optional fields).
    pub deduplicated: u64,
    /// Bytes appended to the store file.
    pub bytes_written: u64,
}

/// What one [`StoreWriter::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// `true` when the record introduced a new unique design.
    pub new_design: bool,
    /// Bytes appended to the store file (0 for a pure duplicate).
    pub bytes: u64,
}

/// Dedup key of a record: dataset plus design fingerprint.
type Key = (String, u64);

/// The merged in-memory view of a store: one record per unique design
/// plus an index from dedup key to record position.
#[derive(Debug, Clone, Default)]
struct Table {
    records: Vec<DesignRecord>,
    index: HashMap<Key, usize>,
}

enum Merge {
    /// A new unique design (or an unindexable 64-bit collision).
    Inserted,
    /// An existing design gained information (options filled,
    /// `selected` set).
    Updated,
    /// Nothing new: the design was already stored with this content.
    Duplicate,
}

impl Table {
    fn merge(&mut self, record: DesignRecord) -> Merge {
        let key = (record.dataset.clone(), record.fingerprint);
        if let Some(&at) = self.index.get(&key) {
            if self.records[at].mlp == record.mlp {
                return if self.records[at].absorb(&record) {
                    Merge::Updated
                } else {
                    Merge::Duplicate
                };
            }
            // A genuine 64-bit fingerprint collision: keep both
            // records (the newcomer stays unindexed, so it cannot be
            // deduplicated against — conservative and vanishingly
            // rare).
            self.records.push(record);
            return Merge::Inserted;
        }
        self.index.insert(key, self.records.len());
        self.records.push(record);
        Merge::Inserted
    }
}

/// What [`StoreWriter::open_salvaged`] / [`DesignStore::open_salvaged`]
/// did to make the file loadable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SalvageReport {
    /// Unique designs loaded after salvage.
    pub kept: usize,
    /// Trailing unparseable lines dropped (0 when the file was clean).
    pub dropped_lines: usize,
    /// Bytes truncated off the end of the file.
    pub dropped_bytes: u64,
    /// Where the pre-salvage file contents were preserved (`None` when
    /// nothing was dropped).
    pub backup: Option<PathBuf>,
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped_lines == 0 {
            write!(f, "store was clean ({} designs)", self.kept)
        } else {
            write!(
                f,
                "dropped {} trailing torn line(s), {} bytes; kept {} designs (backup: {})",
                self.dropped_lines,
                self.dropped_bytes,
                self.kept,
                self.backup
                    .as_deref()
                    .map_or_else(|| "none".into(), |p| p.display().to_string()),
            )
        }
    }
}

fn io_error(path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        reason: err.to_string(),
    }
}

/// Acquire an advisory lock on `file` with bounded retry-with-backoff,
/// so concurrent multi-process writers serialize their appends instead
/// of failing or interleaving. Advisory locks are released by the OS
/// when the holder dies, so a killed writer never wedges the store.
fn lock_with_retry(file: &File, path: &Path, exclusive: bool) -> Result<(), StoreError> {
    let mut delay = Duration::from_millis(1);
    for _ in 0..12 {
        let attempt = if exclusive {
            file.try_lock()
        } else {
            file.try_lock_shared()
        };
        match attempt {
            Ok(()) => return Ok(()),
            Err(TryLockError::WouldBlock) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(TryLockError::Error(err)) => return Err(io_error(path, &err)),
        }
    }
    Err(StoreError::Io {
        path: path.to_path_buf(),
        reason: "timed out waiting for the store file lock".into(),
    })
}

/// Scan the file for corruption and, when every bad line is trailing
/// (nothing valid follows the first unparseable line), truncate the
/// file back to the last good record, preserving the original bytes in
/// a `.bak` sibling. Returns how many lines/bytes were dropped, or
/// `Ok(None)`-equivalent zeros when the file was already clean or
/// absent.
///
/// Mid-file corruption — a valid record *after* a bad line — is not
/// salvageable by truncation and stays a hard [`StoreError::Corrupt`].
fn salvage_trailing(path: &Path) -> Result<SalvageReport, StoreError> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SalvageReport::default())
        }
        Err(err) => return Err(io_error(path, &err)),
    };
    let mut pos = 0usize;
    let mut line_no = 0usize;
    let mut truncate_at: Option<(usize, usize)> = None; // (byte offset, line number)
    let mut dropped_lines = 0usize;
    while pos < data.len() {
        let end = data[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(data.len(), |i| pos + i + 1);
        line_no += 1;
        let parsed = std::str::from_utf8(&data[pos..end]).ok().map(str::trim);
        match parsed {
            Some("") => {} // blank lines are ignored by the loader
            Some(line)
                if serde_json::from_str::<DesignRecord>(line)
                    .is_ok_and(|r| r.fingerprint == fingerprint_of(&r.mlp)) =>
            {
                if let Some((_, bad_line)) = truncate_at {
                    return Err(StoreError::Corrupt {
                        path: path.to_path_buf(),
                        line: bad_line,
                        reason: format!(
                            "valid records follow the corrupt line (line {line_no} parses); \
                             truncation cannot salvage mid-file corruption"
                        ),
                    });
                }
            }
            _ => {
                if truncate_at.is_none() {
                    truncate_at = Some((pos, line_no));
                }
                dropped_lines += 1;
            }
        }
        pos = end;
    }
    let Some((offset, _)) = truncate_at else {
        return Ok(SalvageReport::default());
    };
    // Preserve the original bytes, then truncate in place. The backup
    // goes through atomic_write so a crash mid-salvage cannot leave a
    // torn backup next to a truncated store.
    let mut backup_name = path.as_os_str().to_owned();
    backup_name.push(".bak");
    let backup = PathBuf::from(backup_name);
    crate::io::atomic_write(&backup, &data).map_err(|err| io_error(&backup, &err))?;
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|err| io_error(path, &err))?;
    file.set_len(offset as u64)
        .and_then(|()| file.sync_all())
        .map_err(|err| io_error(path, &err))?;
    Ok(SalvageReport {
        kept: 0, // filled in by the caller once the remainder loads
        dropped_lines,
        dropped_bytes: (data.len() - offset) as u64,
        backup: Some(backup),
    })
}

/// Parse every line of a store file into records, verifying each
/// record's fingerprint against its network. `missing_ok` treats an
/// absent file as empty (the writer's create-on-open case); readers
/// keep it strict.
fn load_lines(path: &Path, missing_ok: bool) -> Result<Vec<DesignRecord>, StoreError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if missing_ok && err.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(err) => return Err(io_error(path, &err)),
    };
    let mut records = Vec::new();
    for (at, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: DesignRecord =
            serde_json::from_str(line).map_err(|err| StoreError::Corrupt {
                path: path.to_path_buf(),
                line: at + 1,
                reason: err.to_string(),
            })?;
        if record.fingerprint != fingerprint_of(&record.mlp) {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                line: at + 1,
                reason: "fingerprint does not match the stored network".into(),
            });
        }
        records.push(record);
    }
    Ok(records)
}

/// The ingest side of a store file: thread-safe, append-only,
/// deduplicating.
///
/// Opening loads any existing records (so dedup spans sessions), then
/// every [`ingest`](Self::ingest) either appends one JSON line (new
/// design, or new information about a stored one) or is a counted
/// no-op (pure duplicate). All state is behind a mutex plus atomics,
/// so one writer can be shared across search threads; the lifetime
/// counters ([`stats`](Self::stats)) are totals and therefore
/// independent of thread interleaving.
#[derive(Debug)]
pub struct StoreWriter {
    path: PathBuf,
    inner: Mutex<Inner>,
    ingested: AtomicU64,
    deduplicated: AtomicU64,
    bytes_written: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    file: File,
    table: Table,
}

impl StoreWriter {
    /// Open (creating if absent, including parent directories) the
    /// store file at `path` and load its existing records.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be created or read;
    /// [`StoreError::Corrupt`] when an existing line fails to parse or
    /// verify.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|err| io_error(&path, &err))?;
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|err| io_error(&path, &err))?;
        // Load under a shared lock so a concurrent writer's in-flight
        // append cannot be observed half-written.
        lock_with_retry(&file, &path, false)?;
        let loaded = load_lines(&path, true);
        let _ = file.unlock();
        let mut table = Table::default();
        for record in loaded? {
            let _ = table.merge(record);
        }
        Ok(Self {
            path,
            inner: Mutex::new(Inner { file, table }),
            ingested: AtomicU64::new(0),
            deduplicated: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// [`open`](Self::open), but a store whose only corruption is a
    /// trailing torn line (the signature of a killed append) is
    /// repaired first: the file is truncated back to the last good
    /// record, the original bytes are kept in a `.bak` sibling, and
    /// the report says what was dropped. Mid-file corruption still
    /// fails hard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures;
    /// [`StoreError::Corrupt`] when valid records follow the first
    /// corrupt line (truncation would lose good data).
    pub fn open_salvaged(path: impl Into<PathBuf>) -> Result<(Self, SalvageReport), StoreError> {
        let path = path.into();
        let mut report = salvage_trailing(&path)?;
        let writer = Self::open(path)?;
        report.kept = writer.len();
        Ok((writer, report))
    }

    /// The store file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Ingest one record: deduplicate against the in-memory index and
    /// append a JSON line when the record is new or carries new
    /// information about a stored design.
    ///
    /// The append itself happens under an advisory file lock (acquired
    /// with bounded retry-with-backoff), so several processes can
    /// share one store file without interleaving their lines; the lock
    /// is released by the OS if the holder dies mid-append, and the
    /// torn tail such a death leaves behind is what
    /// [`open_salvaged`](Self::open_salvaged) repairs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails (or when a `PE_FAULT`
    /// rule for the `store_append` site injects a failure). The
    /// in-memory index is updated first, so a failed append degrades
    /// to a memory-only record rather than inconsistent state.
    pub fn ingest(&self, record: DesignRecord) -> Result<IngestOutcome, StoreError> {
        let line = serde_json::to_string(&record).map_err(|err| StoreError::Io {
            path: self.path.clone(),
            reason: format!("serialize record: {err}"),
        })?;
        let mut inner = self.lock();
        let merge = inner.table.merge(record);
        if matches!(merge, Merge::Duplicate) {
            self.deduplicated.fetch_add(1, Ordering::Relaxed);
            return Ok(IngestOutcome {
                new_design: false,
                bytes: 0,
            });
        }
        let mut payload = line.into_bytes();
        payload.push(b'\n');
        lock_with_retry(&inner.file, &self.path, true)?;
        match fault::check(SITE_STORE_APPEND) {
            Some(FaultAction::Err) => {
                let _ = inner.file.unlock();
                return Err(StoreError::Io {
                    path: self.path.clone(),
                    reason: "injected fault: store_append".into(),
                });
            }
            Some(FaultAction::Kill) => {
                // Crash drill: half a line reaches the file, then the
                // process dies holding the lock — the exact torn tail
                // salvage must repair (and the OS must release).
                let _ = inner.file.write_all(&payload[..payload.len() / 2]);
                let _ = inner.file.sync_all();
                fault::kill_now();
            }
            None => {}
        }
        let appended = inner.file.write_all(&payload);
        let _ = inner.file.unlock();
        appended.map_err(|err| io_error(&self.path, &err))?;
        drop(inner);
        let bytes = payload.len() as u64;
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let new_design = matches!(merge, Merge::Inserted);
        if new_design {
            self.ingested.fetch_add(1, Ordering::Relaxed);
        } else {
            self.deduplicated.fetch_add(1, Ordering::Relaxed);
        }
        Ok(IngestOutcome { new_design, bytes })
    }

    /// Snapshot the lifetime ingest counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingested: self.ingested.load(Ordering::Relaxed),
            deduplicated: self.deduplicated.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Unique designs currently held (across all datasets).
    pub fn len(&self) -> usize {
        self.lock().table.records.len()
    }

    /// Whether the store holds no designs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the current merged records, optionally restricted to one
    /// dataset — the warm-start path captures this once, before the
    /// run it seeds writes anything.
    pub fn snapshot(&self, dataset: Option<&str>) -> Vec<DesignRecord> {
        let inner = self.lock();
        inner
            .table
            .records
            .iter()
            .filter(|r| dataset.is_none_or(|d| r.dataset == d))
            .cloned()
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The query side: a read-only, fully merged snapshot of a store file.
///
/// Loading never writes; queries over a `DesignStore` are pure reads.
#[derive(Debug, Clone)]
pub struct DesignStore {
    path: PathBuf,
    table: Table,
}

impl DesignStore {
    /// Load and merge every record of the store file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read (including when
    /// it does not exist); [`StoreError::Corrupt`] when a line fails
    /// to parse or verify.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        let mut table = Table::default();
        for record in load_lines(&path, false)? {
            let _ = table.merge(record);
        }
        Ok(Self { path, table })
    }

    /// [`load`](Self::load), but a trailing torn line (the signature
    /// of a crash mid-append) is truncated back to the last good
    /// record first, with the original bytes preserved in a `.bak`
    /// sibling. The report says what (if anything) was dropped;
    /// mid-file corruption still fails hard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read or repaired
    /// (including when it does not exist);
    /// [`StoreError::Corrupt`] when valid records follow the first
    /// corrupt line (truncation would lose good data).
    pub fn open_salvaged(path: impl Into<PathBuf>) -> Result<(Self, SalvageReport), StoreError> {
        let path = path.into();
        let mut report = salvage_trailing(&path)?;
        let store = Self::load(path)?;
        report.kept = store.len();
        Ok((store, report))
    }

    /// The file this snapshot was loaded from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every unique design, in first-seen order.
    #[must_use]
    pub fn records(&self) -> &[DesignRecord] {
        &self.table.records
    }

    /// The designs of one dataset, in first-seen order.
    pub fn dataset<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a DesignRecord> + 'a {
        let name = name.to_string();
        self.table.records.iter().filter(move |r| r.dataset == name)
    }

    /// Sorted unique dataset names present in the store.
    #[must_use]
    pub fn datasets(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .table
            .records
            .iter()
            .map(|r| r.dataset.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Look one design up by its dedup key.
    #[must_use]
    pub fn get(&self, dataset: &str, fingerprint: u64) -> Option<&DesignRecord> {
        self.table
            .index
            .get(&(dataset.to_string(), fingerprint))
            .map(|&at| &self.table.records[at])
    }

    /// The design a pipeline select stage marked for `dataset`, if
    /// any.
    #[must_use]
    pub fn selected(&self, dataset: &str) -> Option<&DesignRecord> {
        self.dataset(dataset).find(|r| r.selected)
    }

    /// Number of unique designs (across all datasets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.records.len()
    }

    /// Whether the store holds no designs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};
    use std::sync::atomic::AtomicUsize;

    fn scratch_path(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pe-store-test-{}-{tag}-{unique}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn mlp(bias: i32) -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![AxNeuron {
                    weights: vec![AxWeight {
                        mask: 0b1011,
                        shift: 2,
                        negative: false,
                    }],
                    bias,
                }],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 1,
                }),
            }],
        }
    }

    fn record(bias: i32) -> DesignRecord {
        DesignRecord::new("demo", mlp(bias), 0.9, 10.0)
    }

    #[test]
    fn round_trip_preserves_records() {
        let path = scratch_path("round-trip");
        let writer = StoreWriter::open(&path).expect("open");
        for bias in [1, 2, 3] {
            let outcome = writer.ingest(record(bias)).expect("ingest");
            assert!(outcome.new_design);
        }
        let loaded = DesignStore::load(&path).expect("load");
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.records()[1], record(2));
        assert_eq!(loaded.get("demo", record(3).fingerprint), Some(&record(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicates_collapse_and_are_counted() {
        let path = scratch_path("dedup");
        let writer = StoreWriter::open(&path).expect("open");
        assert!(writer.ingest(record(5)).expect("ingest").new_design);
        let dup = writer.ingest(record(5)).expect("ingest");
        assert!(!dup.new_design);
        assert_eq!(dup.bytes, 0);
        assert_eq!(
            writer.stats(),
            StoreStats {
                ingested: 1,
                deduplicated: 1,
                bytes_written: writer.stats().bytes_written,
            }
        );
        assert!(writer.stats().bytes_written > 0);
        assert_eq!(DesignStore::load(&path).expect("load").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dedup_spans_sessions() {
        let path = scratch_path("sessions");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(7)).expect("ingest");
        }
        let writer = StoreWriter::open(&path).expect("reopen");
        assert!(!writer.ingest(record(7)).expect("ingest").new_design);
        assert_eq!(writer.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn annotation_merges_into_the_same_design() {
        let path = scratch_path("annotate");
        let writer = StoreWriter::open(&path).expect("open");
        let _ = writer.ingest(record(9)).expect("ingest");
        let mut annotated = record(9);
        annotated.test_accuracy = Some(0.87);
        annotated.selected = true;
        let outcome = writer.ingest(annotated).expect("annotate");
        assert!(!outcome.new_design);
        assert!(outcome.bytes > 0, "new information is persisted");
        let loaded = DesignStore::load(&path).expect("load");
        assert_eq!(loaded.len(), 1);
        let merged = loaded.selected("demo").expect("selected design");
        assert_eq!(merged.test_accuracy, Some(0.87));
        assert_eq!(merged.train_accuracy, 0.9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_line_is_a_clean_error() {
        let path = scratch_path("truncated");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
        }
        // Simulate a crash mid-append: drop the trailing half of the
        // file.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        let err = DesignStore::load(&path).expect_err("truncated store must not load");
        assert!(matches!(err, StoreError::Corrupt { line: 1, .. }), "{err}");
        assert!(err.to_string().contains("corrupt"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_fingerprint_is_a_clean_error() {
        let path = scratch_path("tampered");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
        }
        let mut tampered = record(1);
        tampered.fingerprint ^= 1;
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(&serde_json::to_string(&tampered).expect("serialize"));
        text.push('\n');
        std::fs::write(&path, text).expect("write");
        let err = DesignStore::load(&path).expect_err("bad fingerprint must not load");
        assert!(matches!(err, StoreError::Corrupt { line: 2, .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_truncates_a_trailing_torn_line() {
        let path = scratch_path("salvage-tail");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
            let _ = writer.ingest(record(2)).expect("ingest");
        }
        let clean = std::fs::read(&path).expect("read");
        // Simulate a killed append: a half-written third record.
        let torn_line = serde_json::to_string(&record(3)).expect("serialize");
        let mut torn = clean.clone();
        torn.extend_from_slice(&torn_line.as_bytes()[..torn_line.len() / 2]);
        std::fs::write(&path, &torn).expect("write torn");

        assert!(DesignStore::load(&path).is_err(), "strict load refuses");
        let (store, report) = DesignStore::open_salvaged(&path).expect("salvage");
        assert_eq!(store.len(), 2);
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped_lines, 1);
        assert_eq!(report.dropped_bytes, (torn.len() - clean.len()) as u64);
        let backup = report.backup.expect("backup kept");
        assert_eq!(std::fs::read(&backup).expect("read backup"), torn);
        // The repaired file is byte-identical to the pre-crash state
        // and appendable again.
        assert_eq!(std::fs::read(&path).expect("read"), clean);
        let (writer, report) = StoreWriter::open_salvaged(&path).expect("reopen");
        assert_eq!(report.dropped_lines, 0, "already repaired");
        assert!(writer.ingest(record(3)).expect("append resumes").new_design);
        assert_eq!(DesignStore::load(&path).expect("load").len(), 3);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
    }

    #[test]
    fn salvage_reports_a_clean_file_untouched() {
        let path = scratch_path("salvage-clean");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(4)).expect("ingest");
        }
        let before = std::fs::read(&path).expect("read");
        let (store, report) = DesignStore::open_salvaged(&path).expect("salvage");
        assert_eq!(store.len(), 1);
        assert_eq!(
            report,
            SalvageReport {
                kept: 1,
                ..SalvageReport::default()
            }
        );
        assert_eq!(std::fs::read(&path).expect("read"), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_refuses_mid_file_corruption() {
        let path = scratch_path("salvage-mid");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
            let _ = writer.ingest(record(2)).expect("ingest");
        }
        // Corrupt the FIRST line: a later line still parses, so
        // truncation would destroy good data and must be refused.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = lines[0][..lines[0].len() / 2].to_string();
        std::fs::write(&path, lines.join("\n") + "\n").expect("write");
        let err = DesignStore::open_salvaged(&path).expect_err("must refuse");
        assert!(matches!(err, StoreError::Corrupt { line: 1, .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_of_a_wholly_torn_file_yields_an_empty_store() {
        let path = scratch_path("salvage-all");
        std::fs::write(&path, "{\"half\":").expect("write");
        let (writer, report) = StoreWriter::open_salvaged(&path).expect("salvage");
        assert!(writer.is_empty());
        assert_eq!(report.kept, 0);
        assert_eq!(report.dropped_lines, 1);
        assert!(writer.ingest(record(1)).expect("ingest").new_design);
        let backup = report.backup.expect("backup kept");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
    }

    #[test]
    fn concurrent_writers_on_one_file_lose_no_records() {
        // Two independent writers (as two processes would open them)
        // interleave appends on one path; every record must survive
        // and the merged load must see the union.
        let path = scratch_path("two-writers");
        let a = StoreWriter::open(&path).expect("open a");
        let b = StoreWriter::open(&path).expect("open b");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for bias in 0..20 {
                    let _ = a.ingest(record(bias)).expect("a ingests");
                }
            });
            scope.spawn(|| {
                for bias in 10..30 {
                    let _ = b.ingest(record(bias)).expect("b ingests");
                }
            });
        });
        let loaded = DesignStore::load(&path).expect("interleaved file loads");
        assert_eq!(loaded.len(), 30, "the union of both writers survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_for_readers_but_not_writers() {
        let path = scratch_path("missing");
        assert!(matches!(
            DesignStore::load(&path),
            Err(StoreError::Io { .. })
        ));
        let writer = StoreWriter::open(&path).expect("writer creates the file");
        assert!(writer.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_filters_by_dataset() {
        let path = scratch_path("snapshot");
        let writer = StoreWriter::open(&path).expect("open");
        let _ = writer.ingest(record(1)).expect("ingest");
        let other = DesignRecord::new("other", mlp(2), 0.8, 9.0);
        let _ = writer.ingest(other).expect("ingest");
        assert_eq!(writer.snapshot(None).len(), 2);
        assert_eq!(writer.snapshot(Some("demo")).len(), 1);
        assert_eq!(writer.snapshot(Some("absent")).len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
