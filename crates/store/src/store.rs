//! The persistence layer: an append-only ingest writer and a read-only
//! query snapshot over one store file.
//!
//! # On-disk format
//!
//! One [`DesignRecord`] per line, `serde_json`-encoded (JSONL). The
//! format is append-friendly — ingest never rewrites earlier bytes —
//! and mergeable: multiple lines may share a `(dataset, fingerprint)`
//! key, with later lines filling in the optional fields of earlier
//! ones (test accuracy after a front evaluation, the `selected` flag
//! after the pipeline's select stage). Loading replays the merge, so
//! the in-memory index holds exactly one record per unique design
//! regardless of how its information arrived.
//!
//! Corrupt input — a truncated final line after a crash, edited bytes,
//! a fingerprint that no longer matches its network — surfaces as a
//! [`StoreError`], never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::record::{fingerprint_of, DesignRecord};

/// Why a store file could not be opened, read or appended to.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying file operation failed.
    Io {
        /// The store file involved.
        path: PathBuf,
        /// The OS error description.
        reason: String,
    },
    /// A line of the store file is not a valid record (truncated
    /// write, edited bytes, or a fingerprint/network mismatch).
    Corrupt {
        /// The store file involved.
        path: PathBuf,
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, reason } => {
                write!(f, "design store {}: {reason}", path.display())
            }
            StoreError::Corrupt { path, line, reason } => {
                write!(
                    f,
                    "design store {} is corrupt at line {line}: {reason}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Lifetime ingest counters of a [`StoreWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Unique designs inserted (new `(dataset, fingerprint)` keys).
    pub ingested: u64,
    /// Ingest calls that hit an already-stored design (including
    /// annotation passes that only filled in optional fields).
    pub deduplicated: u64,
    /// Bytes appended to the store file.
    pub bytes_written: u64,
}

/// What one [`StoreWriter::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// `true` when the record introduced a new unique design.
    pub new_design: bool,
    /// Bytes appended to the store file (0 for a pure duplicate).
    pub bytes: u64,
}

/// Dedup key of a record: dataset plus design fingerprint.
type Key = (String, u64);

/// The merged in-memory view of a store: one record per unique design
/// plus an index from dedup key to record position.
#[derive(Debug, Clone, Default)]
struct Table {
    records: Vec<DesignRecord>,
    index: HashMap<Key, usize>,
}

enum Merge {
    /// A new unique design (or an unindexable 64-bit collision).
    Inserted,
    /// An existing design gained information (options filled,
    /// `selected` set).
    Updated,
    /// Nothing new: the design was already stored with this content.
    Duplicate,
}

impl Table {
    fn merge(&mut self, record: DesignRecord) -> Merge {
        let key = (record.dataset.clone(), record.fingerprint);
        if let Some(&at) = self.index.get(&key) {
            if self.records[at].mlp == record.mlp {
                return if self.records[at].absorb(&record) {
                    Merge::Updated
                } else {
                    Merge::Duplicate
                };
            }
            // A genuine 64-bit fingerprint collision: keep both
            // records (the newcomer stays unindexed, so it cannot be
            // deduplicated against — conservative and vanishingly
            // rare).
            self.records.push(record);
            return Merge::Inserted;
        }
        self.index.insert(key, self.records.len());
        self.records.push(record);
        Merge::Inserted
    }
}

fn io_error(path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        reason: err.to_string(),
    }
}

/// Parse every line of a store file into records, verifying each
/// record's fingerprint against its network. `missing_ok` treats an
/// absent file as empty (the writer's create-on-open case); readers
/// keep it strict.
fn load_lines(path: &Path, missing_ok: bool) -> Result<Vec<DesignRecord>, StoreError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if missing_ok && err.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(err) => return Err(io_error(path, &err)),
    };
    let mut records = Vec::new();
    for (at, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: DesignRecord =
            serde_json::from_str(line).map_err(|err| StoreError::Corrupt {
                path: path.to_path_buf(),
                line: at + 1,
                reason: err.to_string(),
            })?;
        if record.fingerprint != fingerprint_of(&record.mlp) {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                line: at + 1,
                reason: "fingerprint does not match the stored network".into(),
            });
        }
        records.push(record);
    }
    Ok(records)
}

/// The ingest side of a store file: thread-safe, append-only,
/// deduplicating.
///
/// Opening loads any existing records (so dedup spans sessions), then
/// every [`ingest`](Self::ingest) either appends one JSON line (new
/// design, or new information about a stored one) or is a counted
/// no-op (pure duplicate). All state is behind a mutex plus atomics,
/// so one writer can be shared across search threads; the lifetime
/// counters ([`stats`](Self::stats)) are totals and therefore
/// independent of thread interleaving.
#[derive(Debug)]
pub struct StoreWriter {
    path: PathBuf,
    inner: Mutex<Inner>,
    ingested: AtomicU64,
    deduplicated: AtomicU64,
    bytes_written: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    file: File,
    table: Table,
}

impl StoreWriter {
    /// Open (creating if absent, including parent directories) the
    /// store file at `path` and load its existing records.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be created or read;
    /// [`StoreError::Corrupt`] when an existing line fails to parse or
    /// verify.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|err| io_error(&path, &err))?;
            }
        }
        let mut table = Table::default();
        for record in load_lines(&path, true)? {
            let _ = table.merge(record);
        }
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|err| io_error(&path, &err))?;
        Ok(Self {
            path,
            inner: Mutex::new(Inner { file, table }),
            ingested: AtomicU64::new(0),
            deduplicated: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The store file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Ingest one record: deduplicate against the in-memory index and
    /// append a JSON line when the record is new or carries new
    /// information about a stored design.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails. The in-memory index
    /// is updated first, so a failed append degrades to a
    /// memory-only record rather than inconsistent state.
    pub fn ingest(&self, record: DesignRecord) -> Result<IngestOutcome, StoreError> {
        let line = serde_json::to_string(&record).map_err(|err| StoreError::Io {
            path: self.path.clone(),
            reason: format!("serialize record: {err}"),
        })?;
        let mut inner = self.lock();
        let merge = inner.table.merge(record);
        if matches!(merge, Merge::Duplicate) {
            self.deduplicated.fetch_add(1, Ordering::Relaxed);
            return Ok(IngestOutcome {
                new_design: false,
                bytes: 0,
            });
        }
        inner
            .file
            .write_all(line.as_bytes())
            .and_then(|()| inner.file.write_all(b"\n"))
            .map_err(|err| io_error(&self.path, &err))?;
        drop(inner);
        let bytes = line.len() as u64 + 1;
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let new_design = matches!(merge, Merge::Inserted);
        if new_design {
            self.ingested.fetch_add(1, Ordering::Relaxed);
        } else {
            self.deduplicated.fetch_add(1, Ordering::Relaxed);
        }
        Ok(IngestOutcome { new_design, bytes })
    }

    /// Snapshot the lifetime ingest counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingested: self.ingested.load(Ordering::Relaxed),
            deduplicated: self.deduplicated.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Unique designs currently held (across all datasets).
    pub fn len(&self) -> usize {
        self.lock().table.records.len()
    }

    /// Whether the store holds no designs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the current merged records, optionally restricted to one
    /// dataset — the warm-start path captures this once, before the
    /// run it seeds writes anything.
    pub fn snapshot(&self, dataset: Option<&str>) -> Vec<DesignRecord> {
        let inner = self.lock();
        inner
            .table
            .records
            .iter()
            .filter(|r| dataset.is_none_or(|d| r.dataset == d))
            .cloned()
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The query side: a read-only, fully merged snapshot of a store file.
///
/// Loading never writes; queries over a `DesignStore` are pure reads.
#[derive(Debug, Clone)]
pub struct DesignStore {
    path: PathBuf,
    table: Table,
}

impl DesignStore {
    /// Load and merge every record of the store file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read (including when
    /// it does not exist); [`StoreError::Corrupt`] when a line fails
    /// to parse or verify.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        let mut table = Table::default();
        for record in load_lines(&path, false)? {
            let _ = table.merge(record);
        }
        Ok(Self { path, table })
    }

    /// The file this snapshot was loaded from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every unique design, in first-seen order.
    #[must_use]
    pub fn records(&self) -> &[DesignRecord] {
        &self.table.records
    }

    /// The designs of one dataset, in first-seen order.
    pub fn dataset<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a DesignRecord> + 'a {
        let name = name.to_string();
        self.table.records.iter().filter(move |r| r.dataset == name)
    }

    /// Sorted unique dataset names present in the store.
    #[must_use]
    pub fn datasets(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .table
            .records
            .iter()
            .map(|r| r.dataset.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Look one design up by its dedup key.
    #[must_use]
    pub fn get(&self, dataset: &str, fingerprint: u64) -> Option<&DesignRecord> {
        self.table
            .index
            .get(&(dataset.to_string(), fingerprint))
            .map(|&at| &self.table.records[at])
    }

    /// The design a pipeline select stage marked for `dataset`, if
    /// any.
    #[must_use]
    pub fn selected(&self, dataset: &str) -> Option<&DesignRecord> {
        self.dataset(dataset).find(|r| r.selected)
    }

    /// Number of unique designs (across all datasets).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.records.len()
    }

    /// Whether the store holds no designs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::{AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};
    use std::sync::atomic::AtomicUsize;

    fn scratch_path(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pe-store-test-{}-{tag}-{unique}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn mlp(bias: i32) -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![AxNeuron {
                    weights: vec![AxWeight {
                        mask: 0b1011,
                        shift: 2,
                        negative: false,
                    }],
                    bias,
                }],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 1,
                }),
            }],
        }
    }

    fn record(bias: i32) -> DesignRecord {
        DesignRecord::new("demo", mlp(bias), 0.9, 10.0)
    }

    #[test]
    fn round_trip_preserves_records() {
        let path = scratch_path("round-trip");
        let writer = StoreWriter::open(&path).expect("open");
        for bias in [1, 2, 3] {
            let outcome = writer.ingest(record(bias)).expect("ingest");
            assert!(outcome.new_design);
        }
        let loaded = DesignStore::load(&path).expect("load");
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.records()[1], record(2));
        assert_eq!(loaded.get("demo", record(3).fingerprint), Some(&record(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicates_collapse_and_are_counted() {
        let path = scratch_path("dedup");
        let writer = StoreWriter::open(&path).expect("open");
        assert!(writer.ingest(record(5)).expect("ingest").new_design);
        let dup = writer.ingest(record(5)).expect("ingest");
        assert!(!dup.new_design);
        assert_eq!(dup.bytes, 0);
        assert_eq!(
            writer.stats(),
            StoreStats {
                ingested: 1,
                deduplicated: 1,
                bytes_written: writer.stats().bytes_written,
            }
        );
        assert!(writer.stats().bytes_written > 0);
        assert_eq!(DesignStore::load(&path).expect("load").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dedup_spans_sessions() {
        let path = scratch_path("sessions");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(7)).expect("ingest");
        }
        let writer = StoreWriter::open(&path).expect("reopen");
        assert!(!writer.ingest(record(7)).expect("ingest").new_design);
        assert_eq!(writer.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn annotation_merges_into_the_same_design() {
        let path = scratch_path("annotate");
        let writer = StoreWriter::open(&path).expect("open");
        let _ = writer.ingest(record(9)).expect("ingest");
        let mut annotated = record(9);
        annotated.test_accuracy = Some(0.87);
        annotated.selected = true;
        let outcome = writer.ingest(annotated).expect("annotate");
        assert!(!outcome.new_design);
        assert!(outcome.bytes > 0, "new information is persisted");
        let loaded = DesignStore::load(&path).expect("load");
        assert_eq!(loaded.len(), 1);
        let merged = loaded.selected("demo").expect("selected design");
        assert_eq!(merged.test_accuracy, Some(0.87));
        assert_eq!(merged.train_accuracy, 0.9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_line_is_a_clean_error() {
        let path = scratch_path("truncated");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
        }
        // Simulate a crash mid-append: drop the trailing half of the
        // file.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        let err = DesignStore::load(&path).expect_err("truncated store must not load");
        assert!(matches!(err, StoreError::Corrupt { line: 1, .. }), "{err}");
        assert!(err.to_string().contains("corrupt"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_fingerprint_is_a_clean_error() {
        let path = scratch_path("tampered");
        {
            let writer = StoreWriter::open(&path).expect("open");
            let _ = writer.ingest(record(1)).expect("ingest");
        }
        let mut tampered = record(1);
        tampered.fingerprint ^= 1;
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(&serde_json::to_string(&tampered).expect("serialize"));
        text.push('\n');
        std::fs::write(&path, text).expect("write");
        let err = DesignStore::load(&path).expect_err("bad fingerprint must not load");
        assert!(matches!(err, StoreError::Corrupt { line: 2, .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_for_readers_but_not_writers() {
        let path = scratch_path("missing");
        assert!(matches!(
            DesignStore::load(&path),
            Err(StoreError::Io { .. })
        ));
        let writer = StoreWriter::open(&path).expect("writer creates the file");
        assert!(writer.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_filters_by_dataset() {
        let path = scratch_path("snapshot");
        let writer = StoreWriter::open(&path).expect("open");
        let _ = writer.ingest(record(1)).expect("ingest");
        let other = DesignRecord::new("other", mlp(2), 0.8, 9.0);
        let _ = writer.ingest(other).expect("ingest");
        assert_eq!(writer.snapshot(None).len(), 2);
        assert_eq!(writer.snapshot(Some("demo")).len(), 1);
        assert_eq!(writer.snapshot(Some("absent")).len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
