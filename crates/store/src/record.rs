//! The unit of storage: one unique design and its scenario-invariant
//! measurements.
//!
//! A [`DesignRecord`] carries everything about a design that does *not*
//! depend on the costing scenario: the quantized approximate network
//! itself, its cached accuracies, and the per-neuron
//! [`NeuronGateCounts`] its hardware elaborates to. Scenario-dependent
//! cost ([`pe_hw::HwCost`]) is deliberately absent — the
//! [`query`](crate::query) layer recomputes it in microseconds for
//! whatever technology / supply / power budget the caller asks about.

use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use pe_arith::cache::fx_hash_of;
use pe_arith::{AdderAreaEstimator, NeuronGateCounts};
use pe_hw::{MlpHardwareSpec, NeuronSpec};
use pe_mlp::{ax_to_hardware, AxMlp};

/// One unique design encountered during search, with its cached
/// scenario-invariant measurements.
///
/// Records are serialized as one `serde_json` line each (see
/// [`StoreWriter`](crate::StoreWriter)), so the on-disk format is
/// append-friendly and mergeable: a later record with the same
/// `(dataset, fingerprint)` key fills in the optional fields of an
/// earlier one (e.g. a front member gaining its held-out
/// [`test_accuracy`](Self::test_accuracy) after the GA finishes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignRecord {
    /// Short name of the dataset the design was trained for (one store
    /// file can hold designs of many datasets).
    pub dataset: String,
    /// Dedup key: [`fingerprint_of`] the quantized network
    /// ([`mlp`](Self::mlp)). Verified against the network on load.
    pub fingerprint: u64,
    /// Nominal accuracy on the GA's training subsample — the fitness
    /// the search saw.
    pub train_accuracy: f64,
    /// Held-out test accuracy; `None` until the design reaches an
    /// evaluated front (fronts are annotated after the GA finishes).
    #[serde(default)]
    pub test_accuracy: Option<f64>,
    /// Robust (variation-aware) fitness statistic when the design was
    /// evaluated under Monte-Carlo process variation; `None` for
    /// nominal searches.
    #[serde(default)]
    pub robust_accuracy: Option<f64>,
    /// The GA's scenario-free area objective for this design (gate
    /// equivalents of the approximate accumulators).
    pub estimated_area: f64,
    /// Whether a pipeline `Selected` stage picked this design as its
    /// best-within-budget answer (lets `cost_sweep` reproduce the
    /// "ours" rows from the store alone).
    #[serde(default)]
    pub selected: bool,
    /// Per-neuron gate counts of the elaborated hardware, in spec
    /// order (approximate neurons only — an `AxMlp` lowers to nothing
    /// else). Bit-equal to a fresh [`counts_of_spec`] pass over
    /// [`hardware_spec`](Self::hardware_spec).
    pub counts: Vec<NeuronGateCounts>,
    /// The quantized approximate network itself.
    pub mlp: AxMlp,
}

impl DesignRecord {
    /// Build a record for `mlp` as evaluated during search: computes
    /// the [`fingerprint_of`] dedup key and the per-neuron gate counts
    /// from the elaborated hardware spec.
    #[must_use]
    pub fn new(dataset: &str, mlp: AxMlp, train_accuracy: f64, estimated_area: f64) -> Self {
        let fingerprint = fingerprint_of(&mlp);
        let counts = counts_of_spec(&ax_to_hardware(
            &mlp,
            format!("{dataset}_{fingerprint:016x}"),
        ));
        Self {
            dataset: dataset.to_string(),
            fingerprint,
            train_accuracy,
            test_accuracy: None,
            robust_accuracy: None,
            estimated_area,
            selected: false,
            counts,
            mlp,
        }
    }

    /// Reconstruct the hardware description of the stored network —
    /// the spec a cost model consumes. Identical to what the search
    /// costed live: `ax_to_hardware` on the stored quantized network.
    #[must_use]
    pub fn hardware_spec(&self, name: impl Into<String>) -> MlpHardwareSpec {
        ax_to_hardware(&self.mlp, name)
    }

    /// Model-free scalar area proxy from the stored gate counts: the
    /// summed FA-equivalent of every accumulator (paper Eq. (2)).
    #[must_use]
    pub fn fa_equivalent_total(&self) -> f64 {
        self.counts
            .iter()
            .map(NeuronGateCounts::fa_equivalent)
            .sum()
    }

    /// The accuracy queries rank by: held-out test accuracy when the
    /// design reached a front, the training-subsample fitness
    /// otherwise.
    #[must_use]
    pub fn query_accuracy(&self) -> f64 {
        self.test_accuracy.unwrap_or(self.train_accuracy)
    }

    /// Fold a later record for the same design into this one: fills
    /// optional fields that are still `None` and accumulates the
    /// [`selected`](Self::selected) flag. Returns `true` when anything
    /// changed (i.e. the incoming record carried new information).
    pub fn absorb(&mut self, other: &DesignRecord) -> bool {
        let mut changed = false;
        if self.test_accuracy.is_none() && other.test_accuracy.is_some() {
            self.test_accuracy = other.test_accuracy;
            changed = true;
        }
        if self.robust_accuracy.is_none() && other.robust_accuracy.is_some() {
            self.robust_accuracy = other.robust_accuracy;
            changed = true;
        }
        if other.selected && !self.selected {
            self.selected = true;
            changed = true;
        }
        changed
    }
}

/// Hash view over an [`AxMlp`] for fingerprinting. `AxLayer` does not
/// derive `Hash`, so the view hashes the structural fields (layer
/// count, input widths, QReLU configs) plus every neuron explicitly.
struct FingerprintView<'a>(&'a AxMlp);

impl Hash for FingerprintView<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.layers.len().hash(state);
        for layer in &self.0.layers {
            layer.input_bits.hash(state);
            layer.qrelu.hash(state);
            layer.neurons.hash(state);
        }
    }
}

/// The store's dedup key: a 64-bit FxHash of the full quantized
/// network — every weight's `(mask, shift, sign)` signature, every
/// bias, and the layer structure. Identical genomes therefore collapse
/// to one record; the vanishingly unlikely 64-bit collision of two
/// *different* networks is detected by full-network comparison at
/// ingest (both records are kept).
#[must_use]
pub fn fingerprint_of(mlp: &AxMlp) -> u64 {
    fx_hash_of(&FingerprintView(mlp))
}

/// Per-neuron gate counts of a hardware spec, in spec order, using the
/// paper's adder-area estimator — exactly the counts the live search
/// attributes to each approximate accumulator. Exact (baseline)
/// neurons have no `NeuronGateCounts` representation and are skipped;
/// an `AxMlp` lowered by [`ax_to_hardware`] contains none.
#[must_use]
pub fn counts_of_spec(spec: &MlpHardwareSpec) -> Vec<NeuronGateCounts> {
    let estimator = AdderAreaEstimator::paper();
    spec.layers
        .iter()
        .flat_map(|layer| &layer.neurons)
        .filter_map(|neuron| match neuron {
            NeuronSpec::Approximate(arith) => Some(estimator.counts_of(arith)),
            NeuronSpec::Exact(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_mlp::{AxLayer, AxNeuron, AxWeight, QReluCfg};

    fn tiny_mlp(bias: i32) -> AxMlp {
        AxMlp {
            layers: vec![AxLayer {
                input_bits: 4,
                neurons: vec![AxNeuron {
                    weights: vec![
                        AxWeight {
                            mask: 0b1010,
                            shift: 2,
                            negative: false,
                        },
                        AxWeight {
                            mask: 0b0110,
                            shift: 1,
                            negative: true,
                        },
                    ],
                    bias,
                }],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 1,
                }),
            }],
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_separates_designs() {
        assert_eq!(fingerprint_of(&tiny_mlp(3)), fingerprint_of(&tiny_mlp(3)));
        assert_ne!(fingerprint_of(&tiny_mlp(3)), fingerprint_of(&tiny_mlp(4)));
    }

    #[test]
    fn new_record_counts_match_a_fresh_spec_pass() {
        let record = DesignRecord::new("demo", tiny_mlp(3), 0.9, 12.0);
        let fresh = counts_of_spec(&record.hardware_spec("fresh"));
        assert_eq!(record.counts, fresh);
        assert!(!record.counts.is_empty());
        assert!(record.fa_equivalent_total() > 0.0);
    }

    #[test]
    fn absorb_fills_options_and_reports_change() {
        let mut a = DesignRecord::new("demo", tiny_mlp(3), 0.9, 12.0);
        let mut b = a.clone();
        b.test_accuracy = Some(0.85);
        b.selected = true;
        assert!(a.absorb(&b));
        assert_eq!(a.test_accuracy, Some(0.85));
        assert!(a.selected);
        // A second absorb of the same information is a no-op.
        assert!(!a.absorb(&b));
    }

    #[test]
    fn query_accuracy_prefers_test_accuracy() {
        let mut r = DesignRecord::new("demo", tiny_mlp(3), 0.9, 12.0);
        assert_eq!(r.query_accuracy(), 0.9);
        r.test_accuracy = Some(0.8);
        assert_eq!(r.query_accuracy(), 0.8);
    }
}
