//! Persistent, deduplicated design-space store for bespoke printed
//! MLPs.
//!
//! The GA flow in `printed-axc` evaluates tens of thousands of
//! approximate networks per study and throws almost all of them away.
//! Yet a design's two halves age very differently:
//!
//! * its **accuracy** is scenario-invariant but expensive — it needs
//!   full-dataset inference;
//! * its **cost** is scenario-dependent but cheap — an analytic
//!   function of the [`CostScenario`](pe_hw::CostScenario) via
//!   [`FastCostModel`](pe_hw::FastCostModel).
//!
//! This crate persists the expensive half so the cheap half can be
//! re-asked forever. Every unique design a search encounters becomes a
//! [`DesignRecord`] — the quantized network, its cached accuracies and
//! its per-neuron [`NeuronGateCounts`](pe_arith::NeuronGateCounts) —
//! deduplicated by [`fingerprint_of`] and appended as one
//! `serde_json` line to an on-disk store file. Afterwards,
//! "what is the best design under technology × Vdd × power budget X?"
//! is a [`ScenarioQuery`] over the loaded [`DesignStore`]: a pure read
//! that re-costs stored designs in microseconds instead of re-running
//! a CPU-hours GA.
//!
//! Three layers:
//!
//! * [`record`] — the [`DesignRecord`] unit of storage, the
//!   [`fingerprint_of`] dedup key and the gate-count helpers.
//! * [`store`] — the append-only [`StoreWriter`] (ingest side, safe to
//!   share across threads) and the read-only [`DesignStore`] snapshot
//!   (query side). Corrupt or truncated files load as a clean
//!   [`StoreError`], never a panic.
//! * [`query`] — [`ScenarioQuery`]: re-cost stored designs under an
//!   arbitrary scenario through the memoized fast cost model.
//!
//! Two durability helpers ride along: [`io`] provides the
//! [`atomic_write`] temp-file/fsync/rename helper every crash-safe
//! artifact write in the workspace goes through, and [`fault`] is the
//! deterministic `PE_FAULT` fault-injection plan the crash-recovery
//! drills use to kill or fail I/O at seeded, reproducible points.
//! Store appends take advisory file locks (with bounded
//! retry-with-backoff), so concurrent multi-process writers share one
//! file safely, and [`DesignStore::open_salvaged`] repairs the torn
//! trailing line a killed append leaves behind.
//!
//! The search-side integration (the `StoreSink` eval hook, warm-start
//! seeding and Pareto-front selection over stored designs) lives in
//! `printed-axc`, which reuses its own `pareto` machinery on top of
//! this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod io;
pub mod query;
pub mod record;
pub mod store;

pub use fault::{FaultAction, FaultPlan};
pub use io::atomic_write;
pub use query::{CostedRecord, ScenarioQuery};
pub use record::{counts_of_spec, fingerprint_of, DesignRecord};
pub use store::{DesignStore, IngestOutcome, SalvageReport, StoreError, StoreStats, StoreWriter};
