//! Crash-safe file writes.
//!
//! [`atomic_write`] is the single write path for every artifact that
//! must never be observed half-written: stage-cache JSON, search
//! checkpoints, salvage backups. The contract is the classic
//! write-to-temp / fsync / rename dance — at any kill point the
//! destination either holds its previous contents or the complete new
//! contents, never a torn mix.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::fault::{self, FaultAction, SITE_ATOMIC_WRITE};

/// Write `bytes` to `path` atomically: the full contents go to a
/// sibling temp file, are fsynced, and replace `path` via `rename` (an
/// atomic operation on POSIX filesystems when source and destination
/// share a directory). A crash at any point leaves `path` untouched or
/// fully replaced.
///
/// Under an armed `PE_FAULT` rule for the `atomic_write` site, `err`
/// surfaces an injected [`io::Error`] and `kill` aborts the process
/// after half the bytes reached the temp file — the drill that proves
/// the destination survives torn temp writes.
///
/// # Errors
///
/// Any underlying filesystem error, with the temp file cleaned up on a
/// best-effort basis.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("atomic_write: no file name in {path:?}")))?;
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let tmp = dir.join(format!(
        ".{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let fault = fault::check(SITE_ATOMIC_WRITE);
    if fault == Some(FaultAction::Err) {
        return Err(io::Error::other("injected fault: atomic_write"));
    }
    let result = (|| {
        let mut file = File::create(&tmp)?;
        if fault == Some(FaultAction::Kill) {
            // Torn-write drill: half the payload reaches the temp
            // file, then the process dies. The destination must be
            // unaffected.
            let _ = file.write_all(&bytes[..bytes.len() / 2]);
            let _ = file.sync_all();
            fault::kill_now();
        }
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is
        // platform-dependent; failures here cannot un-rename, so they
        // are not surfaced.
        if let Ok(dir_handle) = File::open(dir) {
            let _ = dir_handle.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "pe-store-io-{}-{tag}-{unique}.json",
            std::process::id()
        ))
    }

    #[test]
    fn writes_and_replaces() {
        let path = scratch("replace");
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        atomic_write(&path, b"second, longer contents").expect("rewrite");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"second, longer contents"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = scratch("tmpdir");
        std::fs::create_dir_all(&dir).expect("mkdir");
        atomic_write(&dir.join("artifact.json"), b"{}").expect("write");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("readdir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["artifact.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_directory_is_a_clean_error() {
        let path = scratch("ghost").join("nested").join("artifact.json");
        assert!(atomic_write(&path, b"{}").is_err());
    }
}
