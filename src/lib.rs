//! Umbrella crate for the printed-MLPs workspace.
//!
//! Re-exports the workspace crates under short module names so the
//! examples and integration tests can use a single dependency:
//!
//! * [`arith`] — bit-level arithmetic and the FA-count area estimator
//! * [`hw`] — EGFET technology model, netlists, power sources, Verilog
//! * [`mlp`] — float MLPs, backprop, quantization, approximate inference
//! * [`datasets`] — the five synthetic UCI-like datasets
//! * [`nsga`] — the NSGA-II multi-objective optimizer
//! * [`axc`] — the DATE'24 hardware-approximation-aware GA training
//!   flow, exposed as a staged `Study`/`Pipeline` API with resumable
//!   stage artifacts, progress/cancellation, a generic `SearchEngine`
//!   trait and parallel multi-dataset runs
//! * [`baselines`] — exact bespoke and state-of-the-art approximate
//!   comparison points (each also a `SearchEngine`)
//! * [`store`] — the persistent, deduplicated design store with
//!   scenario re-costing queries and warm-start seeding

pub use pe_arith as arith;
pub use pe_baselines as baselines;
pub use pe_datasets as datasets;
pub use pe_hw as hw;
pub use pe_mlp as mlp;
pub use pe_nsga as nsga;
pub use pe_store as store;
pub use printed_axc as axc;
