//! Quickstart: train a hardware-aware approximate printed MLP on the
//! Breast Cancer benchmark and print its accuracy/area/power trade-off.
//!
//! Run with `cargo run --release --example quickstart`.

use printed_mlps::axc::{Budget, Study};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::TechLibrary;

fn main() {
    // A scaled-down study finishes in seconds; `Budget::Full` uses
    // production budgets. See `examples/pipeline.rs` for the staged
    // API (inspecting stages, caching, progress, cancellation).
    let study = Study::for_dataset(Dataset::BreastCancer)
        .seed(42)
        .budget(Budget::Quick)
        .tech(TechLibrary::egfet())
        .finish()
        .expect("quick config is valid")
        .run_study()
        .expect("uncancelled study succeeds");

    println!("Breast Cancer, topology (10,3,2)");
    println!(
        "  exact baseline : accuracy {:.3}, {:.2} cm2, {:.2} mW",
        study.baseline_test_accuracy,
        study.baseline_report.area_cm2,
        study.baseline_report.power_mw,
    );
    println!("  Pareto front ({} designs):", study.outcome.front.len());
    for point in &study.outcome.front {
        println!(
            "    accuracy {:.3}  {:.3} cm2  {:.3} mW",
            point.test_accuracy, point.report.area_cm2, point.report.power_mw,
        );
    }
    match &study.selected {
        Some(best) => println!(
            "  selected (<=5% loss): accuracy {:.3}, {:.3} cm2 ({:.0}x smaller), {:.3} mW ({:.0}x lower)",
            best.test_accuracy,
            best.report.area_cm2,
            study.area_reduction().unwrap_or(1.0),
            best.report.power_mw,
            study.power_reduction().unwrap_or(1.0),
        ),
        None => println!("  no design met the 5% loss budget at this (quick) GA budget"),
    }
}
