//! Hardware-aware training on user data: load a CSV (or fall back to a
//! generated one), train the exact baseline, run the GA, and print the
//! Pareto front — the workflow a downstream user of this library would
//! follow for their own printed-classifier application.
//!
//! Run with `cargo run --release --example custom_dataset [data.csv]`.

use std::error::Error;

use printed_mlps::axc::{AxTrainConfig, HwAwareTrainer};
use printed_mlps::datasets::{parse_csv, quantize, stratified_split, TabularData};
use printed_mlps::hw::{CostScenario, ExactCostModel, TechLibrary};
use printed_mlps::mlp::train::train_best_of;
use printed_mlps::mlp::{FixedMlp, QuantConfig, Topology, TrainConfig};
use printed_mlps::nsga::NsgaConfig;

fn main() -> Result<(), Box<dyn Error>> {
    // Load user data, or synthesize a small two-class problem so the
    // example always runs.
    let mut data: TabularData = match std::env::args().nth(1) {
        Some(path) => printed_mlps::datasets::load_csv(path)?,
        None => {
            let csv: String = (0..240)
                .map(|i| {
                    let t = f32::from(i as u16 % 120) / 120.0;
                    if i < 120 {
                        format!("{:.3},{:.3},0\n", 0.2 + 0.2 * t, 0.3)
                    } else {
                        format!("{:.3},{:.3},1\n", 0.6 + 0.2 * t, 0.8)
                    }
                })
                .collect();
            parse_csv(&csv)?
        }
    };
    data.normalize_unit();
    let split = stratified_split(&data, 0.7, 1)?;
    let features = split.train.feature_count();
    let classes = data.classes;
    println!(
        "{} samples, {features} features, {classes} classes",
        data.len()
    );

    // Exact baseline: float training + 8-bit/4-bit quantization.
    let topology = Topology::new(vec![features, 3, classes]);
    let sgd = TrainConfig {
        epochs: 80,
        seed: 1,
        ..TrainConfig::default()
    };
    let (float_mlp, report) = train_best_of(
        &topology,
        &split.train.features,
        &split.train.labels,
        &sgd,
        3,
    );
    println!(
        "float baseline: train accuracy {:.3}",
        report.train_accuracy
    );

    let baseline = FixedMlp::quantize(&float_mlp, QuantConfig::default(), &split.train.features);
    let train_q = quantize(&split.train, 4);
    let test_q = quantize(&split.test, 4);
    let baseline_train = baseline.accuracy(&train_q.features, &train_q.labels);
    let baseline_test = baseline.accuracy(&test_q.features, &test_q.labels);
    println!("exact bespoke baseline: train {baseline_train:.3}, test {baseline_test:.3}");

    // Hardware-aware GA training.
    let ga = AxTrainConfig {
        fitness_subsample: Some(400),
        nsga: NsgaConfig {
            population: 32,
            generations: 30,
            seed: 1,
            ..NsgaConfig::default()
        },
        ..AxTrainConfig::default()
    };
    let cost = ExactCostModel::new(CostScenario::nominal(TechLibrary::egfet()));
    let outcome = HwAwareTrainer::new(ga).train(
        &baseline,
        baseline_train,
        &train_q,
        &test_q,
        &cost,
        "custom",
    );

    println!("Pareto front:");
    for p in &outcome.front {
        println!(
            "  test accuracy {:.3}  area {:.3} cm2  power {:.3} mW",
            p.test_accuracy, p.report.area_cm2, p.report.power_mw,
        );
    }
    Ok(())
}
