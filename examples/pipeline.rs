//! A tour of the staged pipeline API: run stages one at a time and
//! inspect their artifacts, swap the search engine for a prior-work
//! method, cache stages to disk, and cancel a run mid-flight.
//!
//! Run with `cargo run --release --example pipeline`.

use std::sync::Arc;

use printed_mlps::axc::{
    Budget, CancelToken, FlowError, Pipeline, ProgressEvent, RunManyOptions, Study,
};
use printed_mlps::baselines::Tc23Engine;
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::TechLibrary;

fn main() {
    let tech = TechLibrary::egfet();

    // ---- 1. Stage by stage: every intermediate is a first-class value.
    println!("== staged run (Breast Cancer, quick budget) ==");
    let pipeline = Study::for_dataset(Dataset::BreastCancer)
        .seed(42)
        .budget(Budget::Quick)
        .tech(tech.clone())
        .cache_dir("target/experiments/stages")
        .finish()
        .expect("quick config is valid");

    let prepared = pipeline.prepared().expect("prepare");
    println!(
        "  prepared      : {} train rows, {} test rows",
        prepared.train.len(),
        prepared.test.len()
    );

    let float = pipeline
        .float_trained()
        .expect("float training (cached after the first run)");
    println!(
        "  float trained : {:?} topology, test accuracy {:.3}",
        float.float_mlp.topology().sizes(),
        float.float_test_accuracy
    );

    let costed = pipeline.baseline_costed().expect("baseline costing");
    println!(
        "  baseline      : accuracy {:.3}, {:.1} cm2, {:.1} mW",
        costed.baseline_test_accuracy,
        costed.baseline_report.area_cm2,
        costed.baseline_report.power_mw
    );

    let searched = pipeline.searched().expect("search");
    println!(
        "  searched      : engine {:?}, {} front designs, {} evaluations",
        searched.engine,
        searched.outcome.front.len(),
        searched.outcome.evaluations
    );

    let selected = pipeline.select(searched).expect("select");
    match &selected.selected {
        Some(best) => println!(
            "  selected      : accuracy {:.3}, {:.3} cm2, {:.3} mW",
            best.test_accuracy, best.report.area_cm2, best.report.power_mw
        ),
        None => println!("  selected      : no design met the 5% budget"),
    }

    // ---- 2. Swap the search engine: same stages, different method.
    println!("\n== same study, TC'23 post-training engine ==");
    let tc23 = Study::for_dataset(Dataset::BreastCancer)
        .seed(42)
        .budget(Budget::Quick)
        .tech(tech.clone())
        .engine(Arc::new(Tc23Engine::default()))
        .finish()
        .expect("quick config is valid")
        .run()
        .expect("tc23 search succeeds");
    if let Some(point) = tc23.searched.outcome.front.first() {
        println!(
            "  tc23 design   : accuracy {:.3}, {:.3} cm2 (multipliers survive, gains saturate)",
            point.test_accuracy, point.report.area_cm2
        );
    }

    // ---- 3. Cancel mid-run: cooperative, at generation granularity.
    println!("\n== cancellation demo ==");
    let token = CancelToken::new();
    let trip = token.clone();
    let cancelled = Study::for_dataset(Dataset::RedWine)
        .seed(7)
        .budget(Budget::Quick)
        .tech(tech.clone())
        .progress(move |event| {
            if let ProgressEvent::GaGeneration { generation, .. } = event {
                if *generation >= 2 {
                    trip.cancel();
                }
            }
        })
        .cancel_token(token)
        .finish()
        .expect("quick config is valid")
        .run();
    match cancelled {
        Err(FlowError::Cancelled { stage }) => {
            println!("  run aborted cooperatively during the {stage} stage");
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    // ---- 4. Many datasets in parallel, deterministic per-dataset seeds.
    println!("\n== run_many (2 datasets, worker pool) ==");
    let studies = Pipeline::run_many(
        &[Dataset::BreastCancer, Dataset::RedWine],
        &printed_mlps::axc::StudyConfig::quick(0),
        &RunManyOptions::default(),
    )
    .expect("quick configs are valid");
    for study in &studies {
        println!(
            "  {:12} baseline {:.3} -> selected {}",
            study.dataset.spec().name,
            study.baseline_test_accuracy,
            study
                .selected
                .as_ref()
                .map_or("-".into(), |d| format!("{:.3}", d.test_accuracy)),
        );
    }
}
