//! Which printed power source can drive each benchmark MLP?
//! Reproduces the reasoning of the paper's Fig. 5 on two datasets:
//! exact baselines are undeployable, GA-approximated circuits run off
//! printed batteries or harvesters — especially at 0.6 V.
//!
//! Run with `cargo run --release --example battery_feasibility`.

use printed_mlps::axc::{Budget, Study};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::{FeasibilityZones, TechLibrary, VddModel};

fn main() {
    let zones = FeasibilityZones::paper();
    let tech = TechLibrary::egfet();
    let vdd = VddModel::egfet();

    for dataset in [Dataset::BreastCancer, Dataset::RedWine] {
        let study = Study::for_dataset(dataset)
            .seed(7)
            .budget(Budget::Quick)
            .tech(tech.clone())
            .finish()
            .expect("quick config is valid")
            .run_study()
            .expect("uncancelled study succeeds");
        let spec = dataset.spec();
        println!(
            "{} ({:?} topology {:?})",
            spec.name,
            dataset,
            spec.topology()
        );

        let b = &study.baseline_report;
        println!(
            "  baseline @1.0V : {:6.2} cm2 {:7.2} mW -> {:?}",
            b.area_cm2,
            b.power_mw,
            zones.classify(b.area_cm2, b.power_mw),
        );

        if let Some(best) = &study.selected {
            let at_1v = &best.report;
            println!(
                "  ours     @1.0V : {:6.2} cm2 {:7.2} mW -> {:?}",
                at_1v.area_cm2,
                at_1v.power_mw,
                zones.classify(at_1v.area_cm2, at_1v.power_mw),
            );
            let at_0v6 = at_1v.at_vdd(&vdd, 0.6);
            println!(
                "  ours     @0.6V : {:6.2} cm2 {:7.2} mW -> {:?}",
                at_0v6.area_cm2,
                at_0v6.power_mw,
                zones.classify(at_0v6.area_cm2, at_0v6.power_mw),
            );
        } else {
            println!("  (no design met the 5% budget at the quick GA budget)");
        }
        println!();
    }
}
