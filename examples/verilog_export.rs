//! Export a bespoke approximate-MLP netlist as structural Verilog —
//! the "translated into an HDL description" step of the paper's flow
//! (Fig. 2), here for a hand-built two-layer approximate network.
//!
//! Run with `cargo run --release --example verilog_export`.

use printed_mlps::hw::{emit_verilog, Elaborator, TechLibrary};
use printed_mlps::mlp::{ax_to_hardware, AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};

fn main() {
    // A tiny approximate MLP: 3 four-bit inputs, 2 hidden neurons with
    // masked pow2 weights, 2 output classes.
    let mlp = AxMlp {
        layers: vec![
            AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0b1110,
                                shift: 2,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0b1011,
                                shift: 0,
                                negative: true,
                            },
                            AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false,
                            }, // pruned
                        ],
                        bias: 9,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0b1000,
                                shift: 1,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0b1111,
                                shift: 3,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0b0110,
                                shift: 0,
                                negative: true,
                            },
                        ],
                        bias: -4,
                    },
                ],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 2,
                }),
            },
            AxLayer {
                input_bits: 8,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0xF0,
                                shift: 0,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0x0F,
                                shift: 1,
                                negative: true,
                            },
                        ],
                        bias: 15,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0xFF,
                                shift: 1,
                                negative: true,
                            },
                            AxWeight {
                                mask: 0x3C,
                                shift: 0,
                                negative: false,
                            },
                        ],
                        bias: 0,
                    },
                ],
                qrelu: None,
            },
        ],
    };

    let spec = ax_to_hardware(&mlp, "ax_demo");
    let elaborated = Elaborator::new(TechLibrary::egfet()).elaborate(&spec);
    println!("// area  : {:.4} cm2", elaborated.report.area_cm2);
    println!("// power : {:.4} mW", elaborated.report.power_mw);
    println!("// delay : {:.1} ms", elaborated.report.delay_ms);
    println!("// cells : {} total", elaborated.report.cells.total());
    println!();
    println!("{}", emit_verilog(&elaborated.netlist, "ax_demo"));
}
