//! Cross-crate checks on the state-of-the-art comparison baselines:
//! each mechanism must show its characteristic cost/accuracy signature
//! against the same exact baseline.

use printed_mlps::baselines::{
    approximate_tc23, approximate_tcad23, ScConfig, ScMlp, Tc23Config, Tcad23Config,
};
use printed_mlps::datasets::{generate, quantize, stratified_split, Dataset};
use printed_mlps::hw::{Elaborator, TechLibrary, VddModel};
use printed_mlps::mlp::train::train_best_of;
use printed_mlps::mlp::{fixed_to_hardware, FixedMlp, QuantConfig, Topology};

struct Setup {
    baseline: FixedMlp,
    float_mlp: printed_mlps::mlp::DenseMlp,
    train_rows_f: Vec<Vec<f32>>,
    test_rows_f: Vec<Vec<f32>>,
    test_labels: Vec<usize>,
    train_q: pe_datasets::QuantizedData,
    test_q: pe_datasets::QuantizedData,
}

fn setup(dataset: Dataset) -> Setup {
    let spec = dataset.spec();
    let data = generate(dataset, 2);
    let split = stratified_split(&data, 0.7, 2).expect("valid fraction");
    let sgd = printed_mlps::mlp::TrainConfig {
        epochs: 60,
        learning_rate: spec.sgd.learning_rate,
        seed: 2,
        ..printed_mlps::mlp::TrainConfig::default()
    };
    let (float_mlp, _) = train_best_of(
        &Topology::new(spec.topology()),
        &split.train.features,
        &split.train.labels,
        &sgd,
        3,
    );
    let baseline = FixedMlp::quantize(&float_mlp, QuantConfig::default(), &split.train.features);
    Setup {
        baseline,
        float_mlp,
        train_rows_f: split.train.features.clone(),
        test_rows_f: split.test.features.clone(),
        test_labels: split.test.labels.clone(),
        train_q: quantize(&split.train, 4),
        test_q: quantize(&split.test, 4),
    }
}

#[test]
fn tc23_trades_bounded_accuracy_for_area() {
    let s = setup(Dataset::BreastCancer);
    let elab = Elaborator::new(TechLibrary::egfet());
    let exact = elab
        .elaborate(&fixed_to_hardware(&s.baseline, "exact"))
        .report;
    let base_acc = s.baseline.accuracy(&s.train_q.features, &s.train_q.labels);

    let design = approximate_tc23(
        &s.baseline,
        &s.train_q.features,
        &s.train_q.labels,
        &Tc23Config::default(),
    );
    let report = design.hardware_report(&elab, "tc23");

    assert!(report.area_cm2 < exact.area_cm2, "no area saving");
    assert!(
        design.tuning_accuracy >= base_acc - 0.05 - 1e-9,
        "budget violated"
    );
    // Test accuracy stays sane too.
    let test_acc = design.accuracy(&s.test_q.features, &s.test_q.labels);
    assert!(test_acc > 0.7, "tc23 test accuracy {test_acc}");
}

#[test]
fn tcad23_saves_power_via_voltage() {
    let s = setup(Dataset::BreastCancer);
    let elab = Elaborator::new(TechLibrary::egfet());
    let vdd = VddModel::egfet();
    let design = approximate_tcad23(
        &s.baseline,
        &s.train_q.features,
        &s.train_q.labels,
        2,
        &Tcad23Config::default(),
        &elab,
        &vdd,
    );
    let at_vos = design.hardware_report(&elab, &vdd, "tcad");
    let at_1v = design.design.hardware_report(&elab, "tcad_1v");
    assert!(
        at_vos.power_mw < at_1v.power_mw * 0.6,
        "VOS must cut power substantially"
    );
    assert!(at_vos.delay_ms > at_1v.delay_ms, "VOS slows the circuit");
}

#[test]
fn sc_mlp_is_small_but_less_accurate_on_hard_data() {
    // WhiteWine: thin margins; SC noise costs accuracy while the
    // XNOR/MUX datapath stays far below the exact multiplier datapath.
    let s = setup(Dataset::WhiteWine);
    let tech = TechLibrary::egfet();
    let elab = Elaborator::new(tech.clone());
    let exact = elab
        .elaborate(&fixed_to_hardware(&s.baseline, "exact"))
        .report;

    let sc = ScMlp::from_dense(&s.float_mlp, &s.train_rows_f, &ScConfig::default());
    let report = sc.hardware_report(&tech, "sc");
    assert!(
        report.area_cm2 < exact.area_cm2 * 0.6,
        "SC datapath should be small"
    );

    let float_acc = s.float_mlp.accuracy(&s.test_rows_f, &s.test_labels);
    let sc_acc = sc.accuracy(&s.test_rows_f, &s.test_labels);
    assert!(
        sc_acc <= float_acc + 0.02,
        "SC cannot beat the float net it was converted from: {sc_acc} vs {float_acc}"
    );
}
