//! Equivalence properties across the three network representations:
//! `AxMlp` inference is invariant to the argmax-preserving transforms
//! the hardware lowering applies, and `FixedMlp` agrees with a direct
//! integer re-evaluation.

use proptest::prelude::*;

use printed_mlps::mlp::{fold_constants, AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg};

fn ax_weight() -> impl Strategy<Value = AxWeight> {
    (0u16..16, 0u8..7, any::<bool>()).prop_map(|(mask, shift, negative)| AxWeight {
        mask,
        shift,
        negative,
    })
}

fn two_layer_mlp() -> impl Strategy<Value = AxMlp> {
    (
        proptest::collection::vec((proptest::collection::vec(ax_weight(), 3), -200i32..200), 2),
        proptest::collection::vec(
            (
                proptest::collection::vec((0u16..256, 0u8..7, any::<bool>()), 2),
                -400i32..400,
            ),
            3,
        ),
    )
        .prop_map(|(hidden, output)| AxMlp {
            layers: vec![
                AxLayer {
                    input_bits: 4,
                    neurons: hidden
                        .into_iter()
                        .map(|(weights, bias)| AxNeuron { weights, bias })
                        .collect(),
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 2,
                    }),
                },
                AxLayer {
                    input_bits: 8,
                    neurons: output
                        .into_iter()
                        .map(|(ws, bias)| AxNeuron {
                            weights: ws
                                .into_iter()
                                .map(|(mask, shift, negative)| AxWeight {
                                    mask,
                                    shift,
                                    negative,
                                })
                                .collect(),
                            bias,
                        })
                        .collect(),
                    qrelu: None,
                },
            ],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Constant folding never changes a prediction.
    #[test]
    fn folding_preserves_predictions(
        mlp in two_layer_mlp(),
        xs in proptest::collection::vec(proptest::collection::vec(0u8..16, 3), 8),
    ) {
        let folded = fold_constants(&mlp);
        for x in &xs {
            prop_assert_eq!(mlp.predict(x), folded.predict(x));
        }
    }

    /// Adding a common offset to every output bias never changes the
    /// argmax (the invariance the hardware lowering exploits).
    #[test]
    fn output_bias_offset_is_argmax_invariant(
        mlp in two_layer_mlp(),
        offset in -300i32..300,
        xs in proptest::collection::vec(proptest::collection::vec(0u8..16, 3), 8),
    ) {
        let mut shifted = mlp.clone();
        let last = shifted.layers.len() - 1;
        for n in &mut shifted.layers[last].neurons {
            n.bias = n.bias.saturating_add(offset);
        }
        for x in &xs {
            prop_assert_eq!(mlp.predict(x), shifted.predict(x));
        }
    }

    /// Accumulators are linear in the bias.
    #[test]
    fn accumulate_is_affine_in_bias(
        weights in proptest::collection::vec(ax_weight(), 1..5),
        bias in -500i32..500,
        delta in -100i32..100,
        x in proptest::collection::vec(0u8..16, 5),
    ) {
        let n1 = AxNeuron { weights: weights.clone(), bias };
        let n2 = AxNeuron { weights: weights.clone(), bias: bias + delta };
        let fan_in = weights.len();
        prop_assert_eq!(
            n2.accumulate(&x[..fan_in]) - n1.accumulate(&x[..fan_in]),
            i64::from(delta)
        );
    }
}
