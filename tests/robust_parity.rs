//! The robustness subsystem's contract: a zero-variance variation
//! model reproduces the nominal search byte for byte, robust runs are
//! thread-count-invariant, and the Monte-Carlo trial seeds are pinned
//! by value so cached artifacts never silently shift.

use printed_mlps::axc::{
    AxTrainConfig, FlowError, Pipeline, RunManyOptions, Selected, Study, StudyConfig,
};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::variation::trial_seed;
use printed_mlps::hw::{RobustStat, VariationModel};
use printed_mlps::nsga::NsgaConfig;

/// A small-but-real GA budget: big enough to shape distinct fronts,
/// small enough for CI (robust fitness costs ~M× nominal).
fn base_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(100),
            nsga: NsgaConfig {
                population: 12,
                generations: 5,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.05,
        ..StudyConfig::default()
    }
}

fn run(study: Study) -> Selected {
    study
        .finish()
        .expect("robust configs are valid")
        .run()
        .expect("uncancelled study succeeds")
}

/// The full stage artifact as JSON, with the one legitimately
/// non-deterministic field (the GA's wall-clock timing) zeroed so the
/// rest can be compared byte for byte.
fn json(selected: &Selected) -> String {
    let mut untimed = selected.clone();
    untimed.searched.outcome.ga_wall = std::time::Duration::ZERO;
    serde_json::to_string(&untimed).expect("serializable stage artifact")
}

#[test]
fn zero_variance_robust_search_is_byte_identical_to_nominal() {
    // The parity pin: with every spread at zero, each Monte-Carlo
    // trial's perturbations are exact arithmetic no-ops, so the robust
    // statistic equals nominal accuracy *exactly* and the whole GA
    // trajectory — fronts, evaluation counts, the selected design, the
    // full serialized stage artifact — must be byte-identical to the
    // nominal study's, for any trial count and either statistic.
    let dataset = Dataset::BreastCancer;
    let nominal = run(Study::for_dataset(dataset).config(base_config(7)));
    let nominal_json = json(&nominal);
    assert!(nominal.searched.outcome.evaluations > 0);

    for (trials, statistic) in [
        (1, RobustStat::WorstCase),
        (3, RobustStat::WorstCase),
        (5, RobustStat::P95),
    ] {
        let robust = run(Study::for_dataset(dataset)
            .config(base_config(7))
            .variation(VariationModel::nominal(), trials)
            .variation_statistic(statistic));
        assert_eq!(
            robust.searched.outcome.evaluations, nominal.searched.outcome.evaluations,
            "zero-variance robust search must spend identical evaluations (M={trials})"
        );
        assert_eq!(
            json(&robust),
            nominal_json,
            "zero-variance robust artifact must be byte-identical (M={trials}, {statistic:?})"
        );
    }
}

#[test]
fn real_variation_reshapes_the_search() {
    // The complement of the parity pin: a non-zero corner must change
    // the GA's fitness landscape (otherwise the robust path is dead
    // code), while the front stays sane.
    let dataset = Dataset::BreastCancer;
    let nominal = run(Study::for_dataset(dataset).config(base_config(7)));
    let robust = run(Study::for_dataset(dataset)
        .config(base_config(7))
        .variation(VariationModel::printed_egfet(), 4));
    let front = &robust.searched.outcome.front;
    assert!(!front.is_empty());
    for p in front {
        assert!(p.report.area_cm2 > 0.0);
        assert!((0.0..=1.0).contains(&p.test_accuracy));
    }
    assert_ne!(
        serde_json::to_string(front).expect("serializable front"),
        serde_json::to_string(&nominal.searched.outcome.front).expect("serializable front"),
        "a real variation corner must reshape the front"
    );
}

#[test]
fn robust_runs_are_deterministic_across_thread_counts() {
    // The workspace's determinism guarantee extends to robust runs:
    // per-trial seeds derive from the per-dataset study seed, never
    // from scheduling, so 1 worker and 4 workers (with different
    // within-study eval-thread splits) produce byte-identical
    // artifacts.
    let datasets = [Dataset::BreastCancer, Dataset::RedWine];
    let mut config = base_config(11);
    config.variation = Some(printed_mlps::hw::VariationConfig::new(
        VariationModel::printed_egfet(),
        3,
    ));
    let run_at = |threads| {
        Pipeline::run_many_selected(&datasets, &config, &RunManyOptions::with_threads(threads))
            .expect("robust run_many succeeds")
    };
    let (serial, parallel) = (run_at(1), run_at(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(json(s), json(p));
    }
}

#[test]
fn trial_seeds_are_pinned() {
    // Frozen values: robust artifacts (and their cache keys) depend on
    // the exact trial-seed stream — a derivation change must fail here
    // loudly instead of silently shifting every robust result.
    let pinned_master0: Vec<u64> = (0..4).map(|t| trial_seed(0, t)).collect();
    assert_eq!(
        pinned_master0,
        [
            0x6e78_9e6a_a1b9_65f4,
            0x06c4_5d18_8009_454f,
            0xf88b_b8a8_724c_81ec,
            0x1b39_896a_51a8_749b,
        ]
    );
    let pinned_master42: Vec<u64> = (0..3).map(|t| trial_seed(42, t)).collect();
    assert_eq!(
        pinned_master42,
        [
            0x28ef_e333_b266_f103,
            0x4752_6757_130f_9f52,
            0x581c_e1ff_0e4a_e394,
        ]
    );
    // Distinct across trials and masters.
    let mut all: Vec<u64> = pinned_master0
        .iter()
        .chain(&pinned_master42)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 7);
}

#[test]
fn builder_rejects_invalid_variation_requests() {
    // M = 0 evaluates nothing.
    assert!(matches!(
        Study::for_dataset(Dataset::BreastCancer)
            .config(base_config(0))
            .variation(VariationModel::printed_egfet(), 0)
            .finish(),
        Err(FlowError::InvalidConfig { .. })
    ));
    // Negative spreads are not a distribution.
    let negative = VariationModel {
        mobility_sigma: -0.5,
        ..VariationModel::nominal()
    };
    assert!(matches!(
        Study::for_dataset(Dataset::BreastCancer)
            .config(base_config(0))
            .variation(negative, 4)
            .finish(),
        Err(FlowError::InvalidConfig { .. })
    ));
}
