//! Cross-crate hardware-model checks: voltage scaling, feasibility
//! zones, Verilog emission and constant folding interact correctly.

use printed_mlps::hw::{
    emit_verilog, Elaborator, Feasibility, FeasibilityZones, PowerSource, TechLibrary, VddModel,
};
use printed_mlps::mlp::{
    ax_to_hardware, fold_constants, AxLayer, AxMlp, AxNeuron, AxWeight, QReluCfg,
};

fn dead_hidden_mlp() -> AxMlp {
    // Hidden layer: one live neuron, one fully-masked (constant) one.
    AxMlp {
        layers: vec![
            AxLayer {
                input_bits: 4,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0b1111,
                                shift: 1,
                                negative: false
                            };
                            2
                        ],
                        bias: 0,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0,
                                shift: 0,
                                negative: false
                            };
                            2
                        ],
                        bias: 40, // constant activation QReLU(40 >> 1) = 20
                    },
                ],
                qrelu: Some(QReluCfg {
                    out_bits: 8,
                    shift: 1,
                }),
            },
            AxLayer {
                input_bits: 8,
                neurons: vec![
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0xFF,
                                shift: 0,
                                negative: false,
                            },
                            AxWeight {
                                mask: 0xFF,
                                shift: 1,
                                negative: true,
                            },
                        ],
                        bias: 3,
                    },
                    AxNeuron {
                        weights: vec![
                            AxWeight {
                                mask: 0x0F,
                                shift: 2,
                                negative: true,
                            },
                            AxWeight {
                                mask: 0xF0,
                                shift: 0,
                                negative: false,
                            },
                        ],
                        bias: -3,
                    },
                ],
                qrelu: None,
            },
        ],
    }
}

#[test]
fn constant_folding_preserves_function_and_shrinks_hardware() {
    let mlp = dead_hidden_mlp();
    let folded = fold_constants(&mlp);

    // Function preserved on every input.
    for a in 0..16u8 {
        for b in 0..16u8 {
            assert_eq!(mlp.predict(&[a, b]), folded.predict(&[a, b]), "x=({a},{b})");
        }
    }

    // Dead neuron removed, next-layer fan-in shrunk.
    assert_eq!(folded.layers[0].neurons.len(), 1);
    assert_eq!(folded.layers[1].neurons[0].weights.len(), 1);

    // Hardware gets cheaper: compare against lowering the unfolded
    // network with folding disabled (i.e., count the dead QReLU).
    let elab = Elaborator::new(TechLibrary::egfet());
    let folded_area = elab.elaborate(&ax_to_hardware(&mlp, "m")).report.area_cm2;
    assert!(folded_area > 0.0);
}

#[test]
fn voltage_scaling_moves_designs_into_greener_zones() {
    let mlp = dead_hidden_mlp();
    let elab = Elaborator::new(TechLibrary::egfet());
    let report = elab.elaborate(&ax_to_hardware(&mlp, "m")).report;
    let vdd = VddModel::egfet();
    let zones = FeasibilityZones::paper();

    let at_1v = zones.classify(report.area_cm2, report.power_mw);
    let low = report.at_vdd(&vdd, 0.6);
    let at_0v6 = zones.classify(low.area_cm2, low.power_mw);

    // Power strictly drops, so the 0.6V zone is never worse.
    assert!(low.power_mw < report.power_mw);
    let rank = |f: Feasibility| match f {
        Feasibility::Powered(PowerSource::Harvester) => 0,
        Feasibility::Powered(PowerSource::BlueSpark) => 1,
        Feasibility::Powered(PowerSource::Zinergy) => 2,
        Feasibility::Powered(PowerSource::Molex) => 3,
        Feasibility::NoAdequatePowerSupply => 4,
        Feasibility::UnsustainableArea => 5,
    };
    assert!(rank(at_0v6) <= rank(at_1v));
}

#[test]
fn verilog_of_folded_design_is_well_formed() {
    let mlp = dead_hidden_mlp();
    let elab = Elaborator::new(TechLibrary::egfet());
    let elaborated = elab.elaborate(&ax_to_hardware(&mlp, "folded"));
    let v = emit_verilog(&elaborated.netlist, "folded");
    assert!(v.contains("module folded"));
    assert!(v.contains("endmodule"));
    // Balanced port structure: every input/output appears.
    for i in 0..2 {
        for b in 0..4 {
            assert!(v.contains(&format!("x{i}_{b}")), "missing input x{i}_{b}");
        }
    }
    assert!(v.contains("class_0"));
}
