//! The load-bearing invariant of the whole reproduction: the fast
//! FA-count estimator the GA trains against instantiates *exactly* the
//! FA/NOT counts the netlist elaborator produces, for arbitrary
//! approximate neurons.

use proptest::prelude::*;

use printed_mlps::arith::{AdderAreaEstimator, NeuronArithSpec, WeightArith};
use printed_mlps::hw::neuron::{bind_approximate, elaborate_accumulation};
use printed_mlps::hw::{Cell, Netlist};

fn weight_strategy(input_bits: u32) -> impl Strategy<Value = WeightArith> {
    let mask_max = (1u64 << input_bits) - 1;
    (0..=mask_max, 0u32..7, any::<bool>()).prop_map(|(mask, shift, negative)| WeightArith {
        mask,
        shift,
        negative,
    })
}

fn neuron_strategy() -> impl Strategy<Value = NeuronArithSpec> {
    prop_oneof![Just(4u32), Just(8u32)].prop_flat_map(|input_bits| {
        (
            proptest::collection::vec(weight_strategy(input_bits), 1..12),
            -2000i64..2000,
        )
            .prop_map(move |(weights, bias)| NeuronArithSpec {
                input_bits,
                weights,
                bias,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimator_matches_elaboration(spec in neuron_strategy()) {
        let report = AdderAreaEstimator::paper().estimate(&spec);

        let mut netlist = Netlist::new();
        let inputs: Vec<Vec<_>> = (0..spec.weights.len())
            .map(|_| netlist.nets(spec.input_bits as usize))
            .collect();
        let bound = bind_approximate(&spec, &inputs);
        let acc = elaborate_accumulation(&mut netlist, &bound, printed_mlps::arith::ReductionKind::FaOnly);

        prop_assert_eq!(netlist.cell_counts().get(Cell::Fa), report.full_adders);
        prop_assert_eq!(netlist.cell_counts().get(Cell::Not), report.not_gates);
        prop_assert_eq!(acc.accumulator_bits, report.accumulator_bits);
    }

    /// Pruning a mask bit never increases the estimated area.
    #[test]
    fn mask_pruning_is_monotone(spec in neuron_strategy(), wi in 0usize..12, bit in 0u32..8) {
        let est = AdderAreaEstimator::paper();
        let before = est.estimate(&spec).full_adders;
        let mut pruned = spec.clone();
        if let Some(w) = pruned.weights.get_mut(wi % spec.weights.len().max(1)) {
            w.mask &= !(1u64 << (bit % pruned.input_bits));
        }
        let after = est.estimate(&pruned).full_adders;
        prop_assert!(after <= before, "pruning increased FAs: {} -> {}", before, after);
    }
}
