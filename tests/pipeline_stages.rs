//! The staged pipeline API end to end: stage artifacts round-trip
//! through serde, cache to disk and resume without re-running the GA,
//! parallel `run_many` reproduces sequential output byte-for-byte, and
//! cancellation aborts mid-run.

use std::sync::{Arc, Mutex};

use printed_mlps::axc::{
    AxTrainConfig, CancelToken, FlowError, Pipeline, ProgressEvent, RunManyOptions, StageKind,
    Study, StudyConfig,
};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::TechLibrary;
use printed_mlps::nsga::NsgaConfig;

/// A micro GA budget: the whole five-stage pipeline runs in well under
/// a second per dataset.
fn micro_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(100),
            nsga: NsgaConfig {
                population: 8,
                generations: 4,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.05, // clamps to the 10-epoch floor
        ..StudyConfig::default()
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pe-stage-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type EventLog = Arc<Mutex<Vec<ProgressEvent>>>;

fn recording_pipeline(
    dataset: Dataset,
    seed: u64,
    cache: Option<&std::path::Path>,
) -> (Pipeline, EventLog) {
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut builder = Study::for_dataset(dataset)
        .config(micro_config(seed))
        .tech(TechLibrary::egfet())
        .progress(move |e| sink.lock().expect("unpoisoned").push(e.clone()));
    if let Some(dir) = cache {
        builder = builder.cache_dir(dir);
    }
    (builder.finish().expect("valid micro config"), events)
}

fn ga_generations(events: &EventLog) -> usize {
    events
        .lock()
        .expect("unpoisoned")
        .iter()
        .filter(|e| matches!(e, ProgressEvent::GaGeneration { .. }))
        .count()
}

fn loaded_stages(events: &EventLog) -> Vec<StageKind> {
    events
        .lock()
        .expect("unpoisoned")
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::StageLoaded { stage } => Some(*stage),
            _ => None,
        })
        .collect()
}

#[test]
fn stage_artifacts_round_trip_through_serde() {
    let (pipeline, _) = recording_pipeline(Dataset::BreastCancer, 17, None);
    let prepared = pipeline.prepare().expect("prepare");
    let float = pipeline.train_float(prepared.clone()).expect("train");
    let costed = pipeline.cost_baseline(float.clone()).expect("cost");
    let searched = pipeline.search(costed.clone()).expect("search");
    let selected = pipeline.select(searched.clone()).expect("select");

    macro_rules! round_trip {
        ($value:expr, $ty:ty) => {{
            let json = serde_json::to_string_pretty(&$value).expect("serialize");
            let back: $ty = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, $value);
        }};
    }
    round_trip!(prepared, printed_mlps::axc::Prepared);
    round_trip!(float, printed_mlps::axc::FloatTrained);
    round_trip!(costed, printed_mlps::axc::BaselineCosted);
    round_trip!(searched, printed_mlps::axc::Searched);
    round_trip!(selected, printed_mlps::axc::Selected);
}

#[test]
fn cached_searched_stage_resumes_without_rerunning_the_ga() {
    let dir = fresh_dir("resume");

    // First run computes and stores every stage up to `Searched`.
    let (first, first_events) = recording_pipeline(Dataset::BreastCancer, 23, Some(&dir));
    let searched_once = first.searched().expect("first run");
    assert!(ga_generations(&first_events) > 0, "the GA actually ran");
    assert!(loaded_stages(&first_events).is_empty());

    // A fresh pipeline over the same cache resumes: the GA must not run
    // again, and the full run completes from the cached stage.
    let (second, second_events) = recording_pipeline(Dataset::BreastCancer, 23, Some(&dir));
    let selected = second.run().expect("resumed run");
    assert_eq!(ga_generations(&second_events), 0, "resume must skip the GA");
    assert_eq!(loaded_stages(&second_events), vec![StageKind::Searched]);
    assert_eq!(selected.searched, searched_once);

    // A different seed misses the cache (distinct key) and recomputes.
    let (third, third_events) = recording_pipeline(Dataset::BreastCancer, 24, Some(&dir));
    let _ = third.searched().expect("different-seed run");
    assert!(ga_generations(&third_events) > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nominal_cached_search_is_not_reused_by_a_robust_study() {
    use printed_mlps::hw::VariationModel;
    let dir = fresh_dir("robust-key");

    // Seed the cache with a nominal search.
    let (nominal, nominal_events) = recording_pipeline(Dataset::BreastCancer, 29, Some(&dir));
    let nominal_searched = nominal.searched().expect("nominal run");
    assert!(ga_generations(&nominal_events) > 0);

    // The same study with a variation request must miss the Searched
    // cache entry (its key covers the variation config) and re-run the
    // GA — while still resuming the variation-independent early stages.
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let robust = Study::for_dataset(Dataset::BreastCancer)
        .config(micro_config(29))
        .tech(TechLibrary::egfet())
        .variation(VariationModel::printed_egfet(), 2)
        .progress(move |e| sink.lock().expect("unpoisoned").push(e.clone()))
        .cache_dir(&dir)
        .finish()
        .expect("valid robust micro config");
    let robust_searched = robust.searched().expect("robust run");
    assert!(
        ga_generations(&events) > 0,
        "the robust study must re-search, not reuse the nominal front"
    );
    let loaded = loaded_stages(&events);
    assert!(
        !loaded.contains(&StageKind::Searched),
        "the nominal Searched artifact must not satisfy a robust study, loaded {loaded:?}"
    );
    assert!(
        loaded.contains(&StageKind::BaselineCosted),
        "variation-independent early stages must still resume, loaded {loaded:?}"
    );
    assert_ne!(
        serde_json::to_string(&robust_searched.outcome.front).expect("serialize"),
        serde_json::to_string(&nominal_searched.outcome.front).expect("serialize"),
        "a real variation corner must reshape the front"
    );

    // And the nominal pipeline keeps hitting its own entry: the robust
    // run wrote beside it, not over it.
    let (again, again_events) = recording_pipeline(Dataset::BreastCancer, 29, Some(&dir));
    let _ = again.searched().expect("nominal resume");
    assert_eq!(ga_generations(&again_events), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Zero the only non-deterministic field (wall-clock search time) so
/// equality means "same computation", not "same machine load". The
/// table artifacts the bins write never include this field.
fn untimed(mut selected: printed_mlps::axc::Selected) -> printed_mlps::axc::Selected {
    selected.searched.outcome.ga_wall = std::time::Duration::ZERO;
    selected
}

#[test]
fn cached_results_equal_uncached_results() {
    let dir = fresh_dir("equal");
    let (cached, _) = recording_pipeline(Dataset::RedWine, 31, Some(&dir));
    let (plain, _) = recording_pipeline(Dataset::RedWine, 31, None);
    let a = cached.run().expect("cached run");
    let warm = cached.run().expect("warm-cache run");
    let b = plain.run().expect("plain run");
    // The warm run loads the stored artifact: equal to the first run
    // exactly, timing included (cache fidelity).
    assert_eq!(a, warm);
    // An uncached pipeline computes the same result up to wall-clock.
    assert_eq!(untimed(a), untimed(b));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_many_is_parallel_scheduling_invariant() {
    let datasets = [Dataset::BreastCancer, Dataset::RedWine, Dataset::Cardio];
    let base = micro_config(5);

    let mut sequential = Pipeline::run_many(&datasets, &base, &RunManyOptions::with_threads(1))
        .expect("sequential run");
    let mut parallel = Pipeline::run_many(&datasets, &base, &RunManyOptions::with_threads(3))
        .expect("parallel run");

    // Byte-identical JSON artifacts regardless of scheduling, once the
    // wall-clock metadata (never part of the table artifacts) is
    // normalized out.
    for study in sequential.iter_mut().chain(parallel.iter_mut()) {
        study.outcome.ga_wall = std::time::Duration::ZERO;
    }
    let sequential_json = serde_json::to_string_pretty(&sequential).expect("serialize");
    let parallel_json = serde_json::to_string_pretty(&parallel).expect("serialize");
    assert_eq!(sequential_json, parallel_json);

    // Per-dataset seeds are derived, not shared: distinct across rows.
    assert_eq!(sequential.len(), 3);
    assert_eq!(sequential[0].dataset, Dataset::BreastCancer);
    assert_eq!(sequential[1].dataset, Dataset::RedWine);
}

#[test]
fn cancellation_aborts_the_float_training_stage() {
    let token = CancelToken::new();
    let cancel_after = 3usize;
    let seen = Arc::new(Mutex::new(0usize));
    let counter = Arc::clone(&seen);
    let trip = token.clone();
    let pipeline = Study::for_dataset(Dataset::BreastCancer)
        .config(micro_config(41))
        .tech(TechLibrary::egfet())
        .progress(move |e| {
            if matches!(e, ProgressEvent::SgdEpoch { .. }) {
                let mut n = counter.lock().expect("unpoisoned");
                *n += 1;
                if *n == cancel_after {
                    trip.cancel();
                }
            }
        })
        .cancel_token(token)
        .finish()
        .expect("valid micro config");

    match pipeline.run() {
        Err(FlowError::Cancelled { stage }) => assert_eq!(stage, StageKind::FloatTrained),
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert_eq!(*seen.lock().expect("unpoisoned"), cancel_after);
}

#[test]
fn cancelled_search_flushes_a_checkpoint_and_resumes_byte_identically() {
    let dir = fresh_dir("cancel-resume");
    let seed = 47;

    // Cancel mid-GA. The stop-flush must leave a search checkpoint in
    // the stage-cache directory even though the cadence (5 > the 4
    // micro-config generations) never fired on its own.
    let token = CancelToken::new();
    let trip = token.clone();
    let cancelled = Study::for_dataset(Dataset::BreastCancer)
        .config(micro_config(seed))
        .tech(TechLibrary::egfet())
        .progress(move |e| {
            if matches!(e, ProgressEvent::GaGeneration { generation: 1, .. }) {
                trip.cancel();
            }
        })
        .cancel_token(token)
        .cache_dir(&dir)
        .checkpoint_every(5)
        .finish()
        .expect("valid micro config");
    match cancelled.run() {
        Err(FlowError::Cancelled { stage }) => assert_eq!(stage, StageKind::Searched),
        other => panic!("expected cancellation, got {other:?}"),
    }
    let checkpoint_file = |dir: &std::path::Path| {
        std::fs::read_dir(dir).ok().and_then(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .find(|p| p.to_string_lossy().ends_with(".ckpt.json"))
        })
    };
    let flushed = checkpoint_file(&dir).expect("cancellation must flush a search checkpoint");
    let checkpoint: printed_mlps::nsga::SearchCheckpoint =
        serde_json::from_str(&std::fs::read_to_string(&flushed).expect("checkpoint reads"))
            .expect("checkpoint parses");
    assert_eq!(
        checkpoint.generation, 2,
        "cancelling at generation index 1 snapshots two completed generations"
    );

    // A fresh pipeline over the same cache resumes the cancelled
    // search: only the remaining generations run.
    let (resumed, resumed_events) = recording_pipeline(Dataset::BreastCancer, seed, Some(&dir));
    let resumed_selected = resumed.run().expect("resumed run");
    assert_eq!(
        ga_generations(&resumed_events),
        micro_config(seed).ga.nsga.generations - checkpoint.generation,
        "the resumed search must skip the checkpointed generations"
    );
    assert!(
        checkpoint_file(&dir).is_none(),
        "a completed search must clean its checkpoint up"
    );

    // And the result is byte-identical to an uninterrupted run's.
    let (uninterrupted, _) = recording_pipeline(Dataset::BreastCancer, seed, None);
    let baseline_selected = uninterrupted.run().expect("uninterrupted run");
    assert_eq!(
        serde_json::to_string(&untimed(resumed_selected)).expect("serialize"),
        serde_json::to_string(&untimed(baseline_selected)).expect("serialize"),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_aborts_the_search_stage_mid_ga() {
    let token = CancelToken::new();
    let trip = token.clone();
    let pipeline = Study::for_dataset(Dataset::BreastCancer)
        .config(micro_config(43))
        .tech(TechLibrary::egfet())
        .progress(move |e| {
            if matches!(e, ProgressEvent::GaGeneration { generation: 1, .. }) {
                trip.cancel();
            }
        })
        .cancel_token(token)
        .finish()
        .expect("valid micro config");

    match pipeline.run() {
        Err(FlowError::Cancelled { stage }) => assert_eq!(stage, StageKind::Searched),
        other => panic!("expected cancellation, got {other:?}"),
    }
}
