//! The design store's contract: evaluations deduplicate by weight
//! signature, store files round-trip (and fail cleanly when corrupt),
//! re-costing a stored design is bit-equal to costing the live one,
//! store queries reproduce the pipeline's own selections, and
//! attaching an ingest-only store never perturbs the search.

use std::path::PathBuf;
use std::sync::Arc;

use printed_mlps::axc::{
    select_from_store, AxTrainConfig, FlowError, Pipeline, Selected, StoreSink, Study, StudyConfig,
};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::{CostScenario, FastCostModel};
use printed_mlps::mlp::{ax_to_hardware, AxLayer, AxMlp, AxNeuron, AxWeight};
use printed_mlps::nsga::NsgaConfig;
use printed_mlps::store::{counts_of_spec, DesignStore, StoreWriter};

fn scratch_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "printed-mlps-design-store-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A small-but-real GA budget (the robust-parity suite's scale).
fn base_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(100),
            nsga: NsgaConfig {
                population: 12,
                generations: 5,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.05,
        ..StudyConfig::default()
    }
}

fn run(study: Study) -> Selected {
    study
        .finish()
        .expect("store configs are valid")
        .run()
        .expect("uncancelled study succeeds")
}

/// The full stage artifact as JSON with the GA's wall-clock zeroed, so
/// the rest compares byte for byte.
fn json(selected: &Selected) -> String {
    let mut untimed = selected.clone();
    untimed.searched.outcome.ga_wall = std::time::Duration::ZERO;
    serde_json::to_string(&untimed).expect("serializable stage artifact")
}

/// A tiny two-neuron network with enough live weights to elaborate
/// real adder columns (single-summand accumulators cost zero adders).
fn tiny_mlp(mask: u16) -> AxMlp {
    AxMlp {
        layers: vec![AxLayer {
            input_bits: 4,
            neurons: vec![
                AxNeuron {
                    weights: vec![
                        AxWeight {
                            mask,
                            shift: 0,
                            negative: false,
                        };
                        3
                    ],
                    bias: 5,
                },
                AxNeuron {
                    weights: vec![
                        AxWeight {
                            mask: 1,
                            shift: 1,
                            negative: true,
                        };
                        3
                    ],
                    bias: -3,
                },
            ],
            qrelu: None,
        }],
    }
}

#[test]
fn identical_designs_at_different_positions_collapse_to_one_record() {
    let path = scratch_path("dedup");
    let writer = Arc::new(StoreWriter::open(&path).expect("fresh store opens"));
    let sink = StoreSink::new(Arc::clone(&writer), "Dedup", false);

    // The same network evaluated at three population positions (and a
    // distinct sibling) must produce exactly two stored designs.
    for _position in 0..3 {
        sink.record_evaluation(&tiny_mlp(0b11), 0.9, None, 40.0);
    }
    sink.record_evaluation(&tiny_mlp(0b111), 0.8, None, 60.0);

    let stats = sink.stats();
    assert_eq!(stats.ingested, 2, "two unique designs");
    assert_eq!(stats.deduplicated, 2, "two repeat evaluations collapsed");
    assert!(stats.bytes_written > 0);
    drop(sink);
    drop(writer);

    let store = DesignStore::load(&path).expect("store round-trips");
    assert_eq!(store.records().len(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_store_files_fail_cleanly_not_by_panic() {
    // Garbage content: loading and opening both surface clean errors.
    let path = scratch_path("corrupt");
    std::fs::write(&path, "this is not json\n").expect("can write scratch file");
    assert!(DesignStore::load(&path).is_err(), "corrupt load must error");
    let err = Study::for_dataset(Dataset::BreastCancer)
        .config(base_config(3))
        .design_store(&path)
        .finish()
        .err()
        .expect("corrupt store must fail the builder");
    assert!(
        matches!(err, FlowError::Store { .. }),
        "expected FlowError::Store, got {err:?}"
    );

    // A truncated final line (torn write) is also a clean error.
    let torn_src = scratch_path("torn-src");
    let writer = StoreWriter::open(&torn_src).expect("fresh store opens");
    let sink = StoreSink::new(Arc::new(writer), "Torn", false);
    sink.record_evaluation(&tiny_mlp(0b11), 0.9, None, 40.0);
    let full = std::fs::read_to_string(&torn_src).expect("store file readable");
    let torn = scratch_path("torn");
    std::fs::write(&torn, &full[..full.len() / 2]).expect("can write scratch file");
    assert!(
        DesignStore::load(&torn).is_err(),
        "truncated load must error"
    );
    for path in [path, torn_src, torn] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn recosting_a_stored_design_is_bit_equal_to_live_costing() {
    let path = scratch_path("recost");
    let writer = Arc::new(StoreWriter::open(&path).expect("fresh store opens"));
    let sink = StoreSink::new(writer, "Recost", false);
    let mlp = tiny_mlp(0b101);
    sink.record_evaluation(&mlp, 0.9, None, 40.0);
    drop(sink);

    let store = DesignStore::load(&path).expect("store round-trips");
    let record = &store.records()[0];

    // Stored gate counts == a fresh elaboration of the same design.
    let live_spec = ax_to_hardware(&mlp, "recost");
    assert_eq!(record.counts, counts_of_spec(&live_spec));

    // Re-costing the reconstructed spec == costing the live one,
    // bit for bit, at nominal and at a scaled supply.
    for scenario in [
        CostScenario::default(),
        CostScenario::default().at_supply(0.8),
    ] {
        let model = FastCostModel::new(scenario);
        let stored = model.costed(&record.hardware_spec("recost")).report;
        let live = model.costed(&live_spec).report;
        assert_eq!(stored, live, "stored/live cost reports must be bit-equal");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_query_reproduces_the_pipelines_own_selection() {
    let dataset = Dataset::BreastCancer;
    let path = scratch_path("parity");
    let config = base_config(7);
    let selected = run(Study::for_dataset(dataset)
        .config(config.clone())
        .design_store(&path));

    let store = DesignStore::load(&path).expect("store round-trips");
    let from_store = select_from_store(
        &store,
        dataset.spec().name,
        config.scenario.clone(),
        selected.searched.costed.baseline_test_accuracy,
        selected.loss_budget,
        config.scenario.power_budget_mw,
    );
    let live = selected.selected.as_ref().expect("tiny run selects");
    let stored = from_store.expect("store query selects");
    // The costed circuits' labels legitimately differ (live fronts
    // name points `_pN`, store fronts `_store_pN`); everything else
    // must be bit-equal.
    let mut relabeled = stored.report.clone();
    relabeled.name.clone_from(&live.report.name);
    assert_eq!(live.report, relabeled, "same design, bit-equal cost");
    assert_eq!(live.test_accuracy, stored.test_accuracy);
    assert_eq!(live.network.ax(), stored.network.ax());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ingest_only_store_never_perturbs_the_search() {
    let dataset = Dataset::Cardio;
    let storeless = run(Study::for_dataset(dataset).config(base_config(11)));
    let path = scratch_path("inert");
    let with_store = run(Study::for_dataset(dataset)
        .config(base_config(11))
        .design_store(&path));
    assert_eq!(
        json(&storeless),
        json(&with_store),
        "ingest-only store must leave the whole stage artifact byte-identical"
    );
    let store = DesignStore::load(&path).expect("store round-trips");
    assert!(!store.records().is_empty(), "the search was recorded");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_started_searches_are_deterministic() {
    let dataset = Dataset::BreastCancer;
    let seed_store = scratch_path("warm-seed");
    let _ = run(Study::for_dataset(dataset)
        .config(base_config(13))
        .design_store(&seed_store));

    // Each warm run appends its own evaluations, so determinism is
    // checked against identical *copies* of the seed store.
    let mut artifacts = Vec::new();
    for tag in ["warm-a", "warm-b"] {
        let copy = scratch_path(tag);
        std::fs::copy(&seed_store, &copy).expect("can copy scratch store");
        let warmed = run(Study::for_dataset(dataset)
            .config(base_config(13))
            .design_store(&copy)
            .warm_start(true));
        assert!(!warmed.searched.outcome.front.is_empty());
        artifacts.push(json(&warmed));
        let _ = std::fs::remove_file(&copy);
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "warm-started runs from identical stores must be byte-identical"
    );
    let _ = std::fs::remove_file(&seed_store);
}

#[test]
fn shared_writer_ingests_across_parallel_studies() {
    let path = scratch_path("shared");
    let writer = Arc::new(StoreWriter::open(&path).expect("fresh store opens"));
    let mut opts = printed_mlps::axc::RunManyOptions::with_threads(2);
    opts.store = Some(Arc::clone(&writer));
    let datasets = [Dataset::BreastCancer, Dataset::Cardio];
    let studies = Pipeline::run_many(&datasets, &base_config(17), &opts)
        .expect("uncancelled studies succeed");
    assert_eq!(studies.len(), 2);
    drop(opts);
    let stats = writer.stats();
    assert!(stats.ingested > 0);
    drop(writer);

    let store = DesignStore::load(&path).expect("store round-trips");
    let mut names: Vec<&str> = store.datasets();
    names.sort_unstable();
    let mut expected: Vec<&str> = datasets.iter().map(|d| d.spec().name).collect();
    expected.sort_unstable();
    assert_eq!(names, expected, "both studies recorded into one store");
    let _ = std::fs::remove_file(&path);
}
