//! Crash-safety property: resuming a search from *any* persisted
//! checkpoint reproduces the uninterrupted run bit-exactly — Pareto
//! front, final population and evaluation counter — regardless of how
//! many evaluation workers the batch path uses (the thread budget a
//! resumed process runs under need not match the crashed one's).

use std::cell::RefCell;

use proptest::prelude::*;

use printed_mlps::axc::CachedEvaluator;
use printed_mlps::nsga::{
    CheckpointPlan, CheckpointSink, Evaluation, IntProblem, Nsga2, NsgaConfig, NsgaResult,
    SearchCheckpoint,
};

/// A deterministic two-objective toy problem with a genuine trade-off
/// (minimize the gene sum vs. the distance from a per-gene target), so
/// fronts hold several mutually non-dominated points.
struct Ridge {
    bounds: Vec<u32>,
}

impl IntProblem for Ridge {
    fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        let sum: f64 = genes.iter().map(|&g| f64::from(g)).sum();
        let miss: f64 = genes
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let target = f64::from(self.bounds[i] - 1) * 0.7 + i as f64;
                (f64::from(g) - target).powi(2)
            })
            .sum();
        Evaluation::feasible(vec![sum, miss.sqrt()])
    }
}

/// In-memory sink capturing every snapshot in emission order.
#[derive(Default)]
struct Capture(RefCell<Vec<SearchCheckpoint>>);

impl CheckpointSink for Capture {
    fn save(&self, checkpoint: &SearchCheckpoint) {
        self.0.borrow_mut().push(checkpoint.clone());
    }
}

/// One full run at the given worker count, capturing a checkpoint
/// after every generation (`every == 1` maximizes resume coverage).
fn run_capturing(cfg: &NsgaConfig, threads: usize) -> (NsgaResult, Vec<SearchCheckpoint>) {
    let problem = CachedEvaluator::with_options(
        Ridge {
            bounds: vec![48; 5],
        },
        256,
        threads,
    );
    let sink = Capture::default();
    let plan = CheckpointPlan {
        every: 1,
        sink: &sink,
    };
    let result =
        Nsga2::new(cfg.clone()).run_checkpointed(&problem, Vec::new(), None, Some(plan), |_| true);
    (result, sink.0.into_inner())
}

/// Resume from `checkpoint` (after a persistence round-trip through
/// JSON, like the pipeline's on-disk file) at the given worker count.
fn resume(cfg: &NsgaConfig, checkpoint: &SearchCheckpoint, threads: usize) -> NsgaResult {
    let problem = CachedEvaluator::with_options(
        Ridge {
            bounds: vec![48; 5],
        },
        256,
        threads,
    );
    let json = serde_json::to_string(checkpoint).expect("checkpoint serializes");
    let restored: SearchCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
    restored
        .validate(cfg, problem.bounds())
        .expect("round-tripped checkpoint is valid");
    Nsga2::new(cfg.clone()).run_checkpointed(&problem, Vec::new(), Some(restored), None, |_| true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every checkpoint index of a seeded run resumes to the
    /// uninterrupted result, bit for bit, at one worker and at eight —
    /// in every crash×resume thread-budget combination.
    #[test]
    fn resuming_from_every_checkpoint_is_bit_exact_across_thread_budgets(
        seed in any::<u64>(),
        population in 8usize..14,
        generations in 4usize..8,
    ) {
        let cfg = NsgaConfig {
            population,
            generations,
            seed,
            ..NsgaConfig::default()
        };

        let (serial, serial_cps) = run_capturing(&cfg, 1);
        let (threaded, threaded_cps) = run_capturing(&cfg, 8);
        // The batch evaluator's worker count is invisible to the
        // search: both baselines and their checkpoint streams agree.
        prop_assert_eq!(&serial, &threaded);
        prop_assert_eq!(&serial_cps, &threaded_cps);
        prop_assert_eq!(serial_cps.len(), generations);

        for checkpoint in &serial_cps {
            for threads in [1, 8] {
                let resumed = resume(&cfg, checkpoint, threads);
                prop_assert_eq!(&resumed.pareto_front, &serial.pareto_front);
                prop_assert_eq!(&resumed.population, &serial.population);
                prop_assert_eq!(resumed.evaluations, serial.evaluations);
                prop_assert_eq!(resumed.generations, serial.generations);
            }
        }
    }
}

/// The island extension of the same crash-safety property: an
/// archipelago's epoch checkpoints (the post-migration barrier
/// snapshots [`printed_mlps::nsga::IslandModel::run`] flushes) resume
/// to the uninterrupted merged result bit for bit, and the exchange a
/// checkpoint already recorded is never replayed on resume.
#[test]
fn island_epoch_checkpoints_resume_bit_exactly() {
    use printed_mlps::nsga::{IslandCheckpoint, IslandCheckpointSink, IslandConfig, IslandModel};

    #[derive(Default)]
    struct EpochCapture(RefCell<Vec<IslandCheckpoint>>);

    impl IslandCheckpointSink for EpochCapture {
        fn save(&self, checkpoint: &IslandCheckpoint) {
            self.0.borrow_mut().push(checkpoint.clone());
        }
    }

    let config = IslandConfig {
        nsga: NsgaConfig {
            population: 12,
            generations: 7,
            seed: 41,
            ..NsgaConfig::default()
        },
        islands: 3,
        migration_every: 2,
        migrants: 1,
    };
    let problem = || {
        CachedEvaluator::with_options(
            Ridge {
                bounds: vec![48; 5],
            },
            256,
            1,
        )
    };
    let model = IslandModel::new(config.clone());
    let sink = EpochCapture::default();
    let reference = model.run(&problem(), Vec::new(), None, Some(&sink), |_, _| true);
    let checkpoints = sink.0.into_inner();
    // One barrier per epoch target: generations 2, 4, 6 and the final 7.
    assert_eq!(checkpoints.len(), config.epoch_targets().len());

    for checkpoint in &checkpoints {
        let json = serde_json::to_string(checkpoint).expect("island checkpoint serializes");
        let restored: IslandCheckpoint =
            serde_json::from_str(&json).expect("island checkpoint parses");
        restored
            .validate(&config, &[48; 5])
            .expect("round-tripped island checkpoint is valid");
        let resumed = model.run(&problem(), Vec::new(), Some(restored), None, |_, _| true);
        assert_eq!(resumed, reference);
    }
}

/// The counter invariant the pipeline's resume path relies on:
/// a checkpoint after `g` completed generations accounts for the
/// initial population plus `g` offspring waves.
#[test]
fn checkpoint_counters_track_completed_generations() {
    let cfg = NsgaConfig {
        population: 10,
        generations: 6,
        seed: 77,
        ..NsgaConfig::default()
    };
    let (_, checkpoints) = run_capturing(&cfg, 1);
    assert_eq!(checkpoints.len(), 6);
    for (index, checkpoint) in checkpoints.iter().enumerate() {
        assert_eq!(checkpoint.generation, index + 1);
        assert_eq!(
            checkpoint.evaluations,
            ((index + 2) * cfg.population) as u64
        );
        assert_eq!(checkpoint.history.len(), checkpoint.generation);
    }
}
