//! Cross-crate integration: the complete Fig. 2 flow on real (synthetic)
//! data, exercising datasets → float training → quantization → GA →
//! hardware analysis → selection → Verilog, through the staged
//! pipeline API.

use printed_mlps::axc::{Study, StudyConfig};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::{emit_verilog, Elaborator, TechLibrary};
use printed_mlps::mlp::ax_to_hardware;

#[test]
fn breast_cancer_study_produces_usable_designs() {
    let study = Study::for_dataset(Dataset::BreastCancer)
        .config(StudyConfig::quick(3))
        .tech(TechLibrary::egfet())
        .finish()
        .expect("quick config is valid")
        .run_study()
        .expect("uncancelled study succeeds");

    // Baseline quality: the synthetic BC task is easy.
    assert!(
        study.baseline_test_accuracy > 0.9,
        "baseline {}",
        study.baseline_test_accuracy
    );
    // The baseline circuit must be infeasibly large, as in Table I.
    assert!(study.baseline_report.area_cm2 > 1.0);
    assert!(study.baseline_report.power_mw > 5.0);

    // The front is non-empty, sorted by area, and all points carry
    // consistent reports.
    assert!(!study.outcome.front.is_empty());
    for pair in study.outcome.front.windows(2) {
        assert!(pair[0].report.area_cm2 <= pair[1].report.area_cm2);
    }
    for point in &study.outcome.front {
        assert!(point.report.area_cm2 > 0.0);
        assert!(point.report.power_mw > 0.0);
        assert!((0.0..=1.0).contains(&point.test_accuracy));
    }

    // A design within the 5% budget exists even at the quick budget
    // (BC is easy) and it beats the baseline on area.
    let selected = study.selected.as_ref().expect("BC selects at quick budget");
    assert!(selected.test_accuracy >= study.baseline_test_accuracy - 0.05 - 1e-9);
    assert!(study.area_reduction().expect("selected") > 1.5);

    // The selected design lowers to Verilog.
    let mlp = selected.network.ax().expect("NSGA designs are AxMlps");
    let spec = ax_to_hardware(mlp, "bc_selected");
    let elaborated = Elaborator::new(TechLibrary::egfet()).elaborate(&spec);
    let verilog = emit_verilog(&elaborated.netlist, "bc_selected");
    assert!(verilog.contains("module bc_selected"));
    assert!(verilog.contains("endmodule"));
}

#[test]
fn selected_design_accuracy_is_reproducible_from_the_network() {
    let study = Study::for_dataset(Dataset::BreastCancer)
        .config(StudyConfig::quick(5))
        .tech(TechLibrary::egfet())
        .finish()
        .expect("quick config is valid")
        .run_study()
        .expect("uncancelled study succeeds");
    if let Some(selected) = &study.selected {
        // Recomputing accuracy from the stored network must give the
        // recorded value exactly (integer-exact inference).
        let mlp = selected.network.ax().expect("NSGA designs are AxMlps");
        let recomputed = mlp.accuracy(&study.test.features, &study.test.labels);
        assert!((recomputed - selected.test_accuracy).abs() < 1e-12);
    }
}

#[test]
fn studies_are_bit_reproducible() {
    let cfg = StudyConfig::quick(11);
    let tech = TechLibrary::egfet();
    let run = || {
        Study::for_dataset(Dataset::RedWine)
            .config(cfg.clone())
            .tech(tech.clone())
            .finish()
            .expect("quick config is valid")
            .run_study()
            .expect("uncancelled study succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
    assert_eq!(a.outcome.front.len(), b.outcome.front.len());
    for (x, y) in a.outcome.front.iter().zip(&b.outcome.front) {
        assert_eq!(x.network, y.network);
        assert_eq!(x.report.area_cm2, y.report.area_cm2);
    }
    assert_eq!(a.selected, b.selected);
}
