//! Property tests on the arithmetic substrate's invariants.

use proptest::prelude::*;

use printed_mlps::arith::{csd_digits, ColumnProfile, Reducer, ReductionKind, Summand};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Reduction always terminates with columns at most two high, and
    /// never loses representable value capacity.
    #[test]
    fn reduction_is_capacity_preserving(
        heights in proptest::collection::vec(0u32..12, 1..12),
        use_ha in any::<bool>(),
    ) {
        let kind = if use_ha { ReductionKind::FaHa } else { ReductionKind::FaOnly };
        let p = ColumnProfile::from_heights(heights.clone());
        let max_before: u64 = p.iter().map(|(c, h)| u64::from(h) << c).sum();
        let stats = Reducer::new(kind).reduce(&p);
        prop_assert!(stats.final_profile.max_height() <= 2);
        let max_after: u64 =
            stats.final_profile.iter().map(|(c, h)| u64::from(h) << c).sum();
        prop_assert!(max_after >= max_before, "{} < {}", max_after, max_before);
    }

    /// Taller profiles never need fewer tree FAs than a column-wise
    /// subset of themselves.
    #[test]
    fn adding_bits_never_reduces_tree_cost(
        heights in proptest::collection::vec(0u32..10, 1..8),
        extra_col in 0usize..8,
        extra in 1u32..4,
    ) {
        let base = ColumnProfile::from_heights(heights.clone());
        let mut taller = heights.clone();
        if extra_col >= taller.len() {
            taller.resize(extra_col + 1, 0);
        }
        taller[extra_col] += extra;
        let grown = ColumnProfile::from_heights(taller);
        let r = Reducer::new(ReductionKind::FaOnly);
        prop_assert!(
            r.reduce(&grown).full_adders() >= r.reduce(&base).full_adders()
        );
    }

    /// CSD reconstructs every value with non-adjacent digits, never
    /// using more digits than the binary representation.
    #[test]
    fn csd_is_canonical(v in -100_000i64..100_000) {
        let digits = csd_digits(v);
        let reconstructed: i64 = digits.iter().map(|&(p, d)| d.value() << p).sum();
        prop_assert_eq!(reconstructed, v);
        for w in digits.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 + 2);
        }
        prop_assert!(digits.len() as u32 <= v.unsigned_abs().count_ones().max(1));
    }

    /// The two's-complement folding identity behind §III-A holds for
    /// arbitrary masks, shifts, and inputs.
    #[test]
    fn sign_folding_identity(
        mask in 0u64..256,
        shift in 0u32..6,
        x in 0u64..256,
    ) {
        prop_assume!(mask != 0);
        let s = Summand::MaskedInput { input_bits: 8, mask, shift, negative: true };
        let summands = [s.clone()];
        let acc_bits = ColumnProfile::accumulator_width(&summands);
        let modulus = 1u64 << acc_bits;
        let k = s.negation_constant(acc_bits).unwrap().expect("negative summand");
        let v = (x & mask) << shift;
        let inverted = (!v) & (mask << shift);
        prop_assert_eq!(
            (inverted + k) % modulus,
            modulus.wrapping_sub(v) % modulus
        );
    }

    /// Accumulator widths always hold the extreme sums.
    #[test]
    fn accumulator_width_is_sufficient(
        masks in proptest::collection::vec((0u64..16, 0u32..7, any::<bool>()), 1..10),
        bias in -2000i64..2000,
    ) {
        let mut summands: Vec<Summand> = masks
            .iter()
            .map(|&(mask, shift, negative)| Summand::MaskedInput {
                input_bits: 4,
                mask,
                shift,
                negative,
            })
            .collect();
        summands.push(Summand::Constant(bias));
        let w = ColumnProfile::accumulator_width(&summands);
        // Max positive and negative runtime sums must fit in w-bit
        // two's complement.
        let max_pos: i64 = summands
            .iter()
            .map(|s| match s {
                Summand::MaskedInput { negative: false, .. } => s.max_magnitude() as i64,
                Summand::Constant(c) if *c > 0 => *c,
                _ => 0,
            })
            .sum();
        let max_neg: i64 = summands
            .iter()
            .map(|s| match s {
                Summand::MaskedInput { negative: true, .. } => s.max_magnitude() as i64,
                Summand::Constant(c) if *c < 0 => -*c,
                _ => 0,
            })
            .sum();
        let hi = (1i64 << (w - 1)) - 1;
        let lo = -(1i64 << (w - 1));
        prop_assert!(max_pos <= hi, "max {} width {}", max_pos, w);
        prop_assert!(-max_neg >= lo, "min {} width {}", -max_neg, w);
    }
}
