//! Property tests on the chromosome encoding and the GA wiring.

use proptest::prelude::*;

use printed_mlps::axc::{GenomeSpec, LayerGenomeSpec};
use printed_mlps::mlp::QReluCfg;

fn genome_spec_strategy() -> impl Strategy<Value = GenomeSpec> {
    (1usize..6, 1usize..4, 1usize..5).prop_map(|(fan_in, hidden, classes)| {
        GenomeSpec::new(
            vec![
                LayerGenomeSpec {
                    fan_in,
                    neurons: hidden,
                    input_bits: 4,
                    qrelu: Some(QReluCfg {
                        out_bits: 8,
                        shift: 2,
                    }),
                },
                LayerGenomeSpec {
                    fan_in: hidden,
                    neurons: classes,
                    input_bits: 8,
                    qrelu: None,
                },
            ],
            8,
            12,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode then encode is the identity on in-bounds genomes.
    #[test]
    fn decode_encode_round_trip(
        spec in genome_spec_strategy(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let genes = printed_mlps::nsga::random_genome(spec.bounds(), &mut rng);
        let mlp = spec.decode(&genes);
        prop_assert_eq!(spec.encode(&mlp), genes);
    }

    /// Decoded networks are structurally valid and evaluable.
    #[test]
    fn decoded_networks_infer_without_panic(
        spec in genome_spec_strategy(),
        seed in any::<u64>(),
        x in proptest::collection::vec(0u8..16, 1..6),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let genes = printed_mlps::nsga::random_genome(spec.bounds(), &mut rng);
        let mlp = spec.decode(&genes);
        let fan_in = mlp.layers[0].neurons[0].weights.len();
        if x.len() >= fan_in {
            let pred = mlp.predict(&x[..fan_in]);
            prop_assert!(pred < mlp.layers.last().unwrap().neurons.len());
        }
    }

    /// Gene bounds are positive and gene count matches the layout
    /// formula of Fig. 3: (3·fan_in + 1) genes per neuron.
    #[test]
    fn bounds_match_figure_3_layout(spec in genome_spec_strategy()) {
        prop_assert!(spec.bounds().iter().all(|&b| b > 0));
        let expected: usize = spec
            .layers()
            .iter()
            .map(|l| l.neurons * (3 * l.fan_in + 1))
            .sum();
        prop_assert_eq!(spec.gene_count(), expected);
    }
}
