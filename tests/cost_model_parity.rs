//! The contract of the unified cost layer: the *fast* analytic
//! [`FastCostModel`] and the *exact* netlist-backed [`ExactCostModel`]
//! produce identical hardware reports — cell counts, area, power,
//! delay, per-neuron statistics — for arbitrary bespoke-MLP specs,
//! mixing both neuron flavours, under both compressor policies and at
//! scaled supplies. The exact model is itself pinned against full
//! netlist elaboration, closing the chain GA-objective → analytic cost
//! → netlist.

use proptest::prelude::*;

use printed_mlps::arith::{NeuronArithSpec, ReductionKind, WeightArith};
use printed_mlps::hw::cost::{CostModel, CostScenario, ExactCostModel, FastCostModel};
use printed_mlps::hw::spec::{
    ExactNeuronSpec, LayerActivation, LayerSpec, MlpHardwareSpec, NeuronSpec,
};
use printed_mlps::hw::{Elaborator, TechLibrary};

fn approx_neuron(input_bits: u32, fan_in: usize) -> impl Strategy<Value = NeuronSpec> {
    let mask_max = (1u64 << input_bits) - 1;
    (
        proptest::collection::vec(
            (0..=mask_max, 0u32..7, any::<bool>()).prop_map(|(mask, shift, negative)| {
                WeightArith {
                    mask,
                    shift,
                    negative,
                }
            }),
            fan_in..=fan_in,
        ),
        -2000i64..2000,
    )
        .prop_map(move |(weights, bias)| {
            NeuronSpec::Approximate(NeuronArithSpec {
                input_bits,
                weights,
                bias,
            })
        })
}

fn exact_neuron(input_bits: u32, fan_in: usize) -> impl Strategy<Value = NeuronSpec> {
    (
        proptest::collection::vec(-200i64..200, fan_in..=fan_in),
        -500i64..500,
        0u32..3,
        any::<bool>(),
    )
        .prop_map(move |(weights, bias, trunc_bits, csd_multipliers)| {
            NeuronSpec::Exact(ExactNeuronSpec {
                input_bits,
                weights,
                bias,
                trunc_bits,
                csd_multipliers,
            })
        })
}

fn neuron(input_bits: u32, fan_in: usize) -> impl Strategy<Value = NeuronSpec> {
    prop_oneof![
        approx_neuron(input_bits, fan_in),
        exact_neuron(input_bits, fan_in)
    ]
}

/// A random one- or two-layer bespoke MLP mixing neuron flavours.
fn network_strategy() -> impl Strategy<Value = MlpHardwareSpec> {
    (1usize..4, 1usize..4, any::<bool>()).prop_flat_map(|(inputs, hidden, two_layers)| {
        let input_bits = 4u32;
        if two_layers {
            (
                proptest::collection::vec(neuron(input_bits, inputs), hidden..=hidden),
                proptest::collection::vec(neuron(8, hidden), 2..4),
            )
                .prop_map(move |(h, out)| MlpHardwareSpec {
                    name: "parity".into(),
                    inputs,
                    input_bits,
                    layers: vec![
                        LayerSpec {
                            neurons: h,
                            activation: LayerActivation::QRelu {
                                out_bits: 8,
                                shift: 2,
                            },
                        },
                        LayerSpec {
                            neurons: out,
                            activation: LayerActivation::Argmax,
                        },
                    ],
                })
                .boxed()
        } else {
            proptest::collection::vec(neuron(input_bits, inputs), 2..4)
                .prop_map(move |out| MlpHardwareSpec {
                    name: "parity".into(),
                    inputs,
                    input_bits,
                    layers: vec![LayerSpec {
                        neurons: out,
                        activation: LayerActivation::Argmax,
                    }],
                })
                .boxed()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// fast ≡ exact: full report equality (cells included) plus
    /// per-neuron statistics, under both compressor policies.
    #[test]
    fn fast_model_equals_exact_model(spec in network_strategy()) {
        for kind in [ReductionKind::FaOnly, ReductionKind::FaHa] {
            let scenario = CostScenario::default();
            let fast = FastCostModel::new(scenario.clone()).with_kind(kind);
            let exact = ExactCostModel::new(scenario).with_kind(kind);
            let f = fast.costed(&spec);
            let e = exact.costed(&spec);
            prop_assert_eq!(&f.report, &e.report, "{:?}", kind);
            prop_assert_eq!(&f.report.cells, &e.report.cells, "{:?}", kind);
            prop_assert_eq!(&f.neuron_stats, &e.neuron_stats, "{:?}", kind);
            prop_assert_eq!(fast.cost(&spec), exact.cost(&spec), "{:?}", kind);
        }
    }

    /// The exact model is itself the full elaboration: the chain
    /// fast ≡ exact ≡ netlist closes on the same random specs.
    #[test]
    fn exact_model_equals_full_elaboration(spec in network_strategy()) {
        let exact = ExactCostModel::new(CostScenario::default());
        let full = Elaborator::new(TechLibrary::egfet()).elaborate(&spec);
        prop_assert_eq!(&exact.report(&spec), &full.report);
        prop_assert_eq!(&exact.costed(&spec).report.cells, &full.netlist.cell_counts());
    }

    /// Parity survives scenario scaling: at a sub-nominal supply and on
    /// the second technology both models still agree exactly (they
    /// share the same rescale), and the physics is sane.
    #[test]
    fn parity_holds_under_scaled_scenarios(spec in network_strategy()) {
        for tech in TechLibrary::builtin() {
            let scenario = CostScenario::nominal(tech).at_supply(0.6);
            let fast = FastCostModel::new(scenario.clone());
            let exact = ExactCostModel::new(scenario.clone());
            let f = fast.report(&spec);
            prop_assert_eq!(&f, &exact.report(&spec), "{}", scenario.label());
            prop_assert_eq!(f.vdd, 0.6);
            let nominal = FastCostModel::new(CostScenario::nominal(scenario.tech.clone()));
            let n = nominal.report(&spec);
            prop_assert_eq!(n.area_cm2, f.area_cm2);
            prop_assert!(f.power_mw <= n.power_mw);
            prop_assert!(f.delay_ms >= n.delay_ms);
        }
    }
}
