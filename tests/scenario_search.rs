//! Scenario-aware search end to end: the same study run under the
//! default scenario, under a power budget, at low voltage and on the
//! second technology library must produce *distinct, sane* fronts —
//! the acceptance contract of the unified cost layer.

use printed_mlps::axc::{AxTrainConfig, Pipeline, Selected, Study, StudyConfig};
use printed_mlps::datasets::Dataset;
use printed_mlps::hw::{FeasibilityZones, PowerSource, TechLibrary};
use printed_mlps::nsga::NsgaConfig;

/// A small-but-real GA budget: big enough to shape distinct fronts,
/// small enough for CI.
fn base_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(150),
            nsga: NsgaConfig {
                population: 16,
                generations: 8,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.05,
        ..StudyConfig::default()
    }
}

fn run(study: Study) -> Selected {
    study
        .finish()
        .expect("scenario configs are valid")
        .run()
        .expect("uncancelled study succeeds")
}

fn sane(selected: &Selected) {
    let front = &selected.searched.outcome.front;
    assert!(!front.is_empty(), "front must not be empty");
    for p in front {
        assert!(p.report.area_cm2 > 0.0);
        assert!(p.report.power_mw > 0.0);
        assert!((0.0..=1.0).contains(&p.test_accuracy));
    }
    // Area-sorted, as every front is.
    for w in front.windows(2) {
        assert!(w[0].report.area_cm2 <= w[1].report.area_cm2);
    }
}

fn front_json(selected: &Selected) -> String {
    serde_json::to_string(&selected.searched.outcome.front).expect("serializable front")
}

#[test]
fn power_budget_and_second_technology_produce_distinct_sane_fronts() {
    let dataset = Dataset::BreastCancer;
    let default_run = run(Study::for_dataset(dataset).config(base_config(7)));
    sane(&default_run);
    let default_front = front_json(&default_run);
    let default_selected = default_run.selected.as_ref().expect("default run selects");
    assert_eq!(
        default_selected.report.vdd, 1.0,
        "default scenario reports at nominal supply"
    );

    // ---- A power-budgeted run: every reported design must fit the
    // printed harvester's 2 mW envelope at 0.6 V.
    let budgeted = run(Study::for_dataset(dataset)
        .config(base_config(7))
        .supply(0.6)
        .power_source(PowerSource::Harvester));
    sane(&budgeted);
    let budget = PowerSource::Harvester.budget_mw();
    assert_ne!(
        front_json(&budgeted),
        default_front,
        "the budgeted scenario must reshape the front"
    );
    for p in &budgeted.searched.outcome.front {
        assert_eq!(p.report.vdd, 0.6, "front reports land at the study supply");
    }
    if let Some(selected) = &budgeted.selected {
        assert!(
            selected.report.power_mw <= budget,
            "selected design draws {} mW over the {} mW budget",
            selected.report.power_mw,
            budget
        );
        // The budgeted pick really is harvester-deployable in the
        // Fig. 5 sense.
        assert!(FeasibilityZones::paper()
            .classify(selected.report.area_cm2, selected.report.power_mw)
            .is_deployable());
    }

    // ---- An impossible budget: the selection honestly reports that
    // nothing qualifies instead of papering over it.
    let impossible = run(Study::for_dataset(dataset)
        .config(base_config(7))
        .power_budget_mw(1e-6));
    assert!(
        impossible.selected.is_none(),
        "a sub-µW budget cannot be met by any printed design"
    );

    // ---- The second technology: same logic, different cost surface.
    let low_power = run(Study::for_dataset(dataset)
        .config(base_config(7))
        .tech(TechLibrary::egfet_lowpower()));
    sane(&low_power);
    assert_ne!(
        front_json(&low_power),
        default_front,
        "the LP technology must move the front's absolute costs"
    );
    let (d, l) = (
        &default_run.searched.costed.baseline_report,
        &low_power.searched.costed.baseline_report,
    );
    assert!(
        l.power_mw < d.power_mw && l.area_cm2 > d.area_cm2,
        "the LP corner trades area ({} vs {} cm²) for power ({} vs {} mW)",
        l.area_cm2,
        d.area_cm2,
        l.power_mw,
        d.power_mw
    );
}

#[test]
fn scenario_runs_are_deterministic() {
    // The scenario knobs must not break the workspace's determinism
    // guarantee: identical configurations produce identical artifacts.
    let study = || {
        Study::for_dataset(Dataset::RedWine)
            .config(base_config(3))
            .supply(0.8)
            .power_source(PowerSource::Zinergy)
    };
    let (a, b) = (run(study()), run(study()));
    assert_eq!(front_json(&a), front_json(&b));
    assert_eq!(a.selected.is_some(), b.selected.is_some());
}

#[test]
fn variation_composes_with_scenario_knobs() {
    // A robust search under a non-nominal scenario: the variation
    // request and the scenario knobs must compose — distinct from the
    // plain scenario run, sane, reported at the study supply, and
    // deterministic like every other study.
    use printed_mlps::hw::VariationModel;
    let dataset = Dataset::BreastCancer;
    let scenario_only = run(Study::for_dataset(dataset)
        .config(base_config(13))
        .supply(0.8));
    sane(&scenario_only);
    let robust = || {
        run(Study::for_dataset(dataset)
            .config(base_config(13))
            .supply(0.8)
            .variation(VariationModel::printed_egfet(), 3))
    };
    let first = robust();
    sane(&first);
    for p in &first.searched.outcome.front {
        assert_eq!(p.report.vdd, 0.8, "robust fronts land at the study supply");
    }
    assert_ne!(
        front_json(&first),
        front_json(&scenario_only),
        "the variation corner must reshape the scenario front"
    );
    assert_eq!(
        front_json(&first),
        front_json(&robust()),
        "robust scenario runs stay deterministic"
    );
}

#[test]
fn run_many_threads_scenarios_through_every_dataset() {
    // Multi-dataset runs inherit the base config's scenario.
    let mut config = base_config(11);
    config.scenario = printed_mlps::hw::CostScenario::nominal(TechLibrary::egfet_lowpower())
        .at_supply(0.7)
        .powered_by(PowerSource::Molex);
    let selected = Pipeline::run_many_selected(
        &[Dataset::BreastCancer, Dataset::RedWine],
        &config,
        &printed_mlps::axc::RunManyOptions::with_threads(2),
    )
    .expect("scenario run_many succeeds");
    assert_eq!(selected.len(), 2);
    for s in &selected {
        sane(s);
        for p in &s.searched.outcome.front {
            assert_eq!(p.report.vdd, 0.7);
        }
        if let Some(pick) = &s.selected {
            assert!(pick.report.power_mw <= PowerSource::Molex.budget_mw());
        }
    }
}
