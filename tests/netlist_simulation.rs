//! Functional verification of the hardware model: simulating the
//! elaborated gate netlist of an approximate neuron must produce, bit
//! for bit, the accumulator value the integer inference model computes
//! (modulo 2^W, by the sign-folding construction of §III-A).

use std::collections::HashMap;

use proptest::prelude::*;

use printed_mlps::arith::{ColumnProfile, NeuronArithSpec, ReductionKind, WeightArith};
use printed_mlps::hw::neuron::{bind_approximate, elaborate_accumulation};
use printed_mlps::hw::Netlist;
use printed_mlps::mlp::{AxNeuron, AxWeight};

fn weight_strategy() -> impl Strategy<Value = AxWeight> {
    (0u16..16, 0u8..7, any::<bool>()).prop_map(|(mask, shift, negative)| AxWeight {
        mask,
        shift,
        negative,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn gate_level_accumulator_matches_integer_model(
        weights in proptest::collection::vec(weight_strategy(), 1..6),
        bias in -500i32..500,
        xs in proptest::collection::vec(0u8..16, 6),
    ) {
        let neuron = AxNeuron { weights: weights.clone(), bias };
        let spec: NeuronArithSpec = neuron.to_arith_spec(4);

        // Reference value from the integer inference model.
        let fan_in = weights.len();
        let expected = neuron.accumulate(&xs[..fan_in]);

        // Gate-level elaboration and simulation.
        let mut netlist = Netlist::new();
        let input_nets: Vec<Vec<_>> = (0..fan_in).map(|_| netlist.nets(4)).collect();
        let bound = bind_approximate(&spec, &input_nets);
        let acc = elaborate_accumulation(&mut netlist, &bound, ReductionKind::FaOnly);

        let mut inputs = HashMap::new();
        for (nets, &x) in input_nets.iter().zip(&xs) {
            for (b, net) in nets.iter().enumerate() {
                inputs.insert(*net, x >> b & 1 == 1);
            }
        }
        let values = netlist.simulate(&inputs);

        let mut simulated: i64 = 0;
        for (b, net) in acc.sum_bits.iter().enumerate() {
            if values[net.0 as usize] {
                simulated |= 1i64 << b;
            }
        }
        // Interpret the W-bit two's-complement result.
        let w = acc.accumulator_bits;
        if simulated >> (w - 1) & 1 == 1 {
            simulated -= 1i64 << w;
        }

        prop_assert_eq!(
            simulated, expected,
            "gate-level {} vs integer {} (W={}, weights {:?}, bias {}, xs {:?})",
            simulated, expected, w, weights, bias, &xs[..fan_in]
        );
    }

    /// The tree must also be value-exact for plain unsigned columns.
    #[test]
    fn adder_tree_sums_random_bit_columns(
        heights in proptest::collection::vec(0u32..6, 1..6),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::VecDeque;
        use printed_mlps::hw::adder_tree::TreeBuilder;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut netlist = Netlist::new();
        let mut columns: Vec<VecDeque<_>> = Vec::new();
        let mut inputs = HashMap::new();
        let mut expected: u64 = 0;
        for (c, &h) in heights.iter().enumerate() {
            let mut col = VecDeque::new();
            for _ in 0..h {
                let net = netlist.net();
                let v: bool = rng.gen();
                inputs.insert(net, v);
                if v {
                    expected += 1u64 << c;
                }
                col.push_back(net);
            }
            columns.push(col);
        }
        let tree = TreeBuilder::new(ReductionKind::FaOnly).reduce(&mut netlist, columns);
        let values = netlist.simulate(&inputs);
        let mut got: u64 = 0;
        for (b, net) in tree.sum_bits.iter().enumerate() {
            if values[net.0 as usize] {
                got |= 1u64 << b;
            }
        }
        prop_assert_eq!(got, expected, "heights {:?}", heights);
        // Unused but validates the profile path compiles together.
        let _ = ColumnProfile::from_heights(heights.clone());
        let _ = WeightArith { mask: 1, shift: 0, negative: false };
    }
}
