//! Island-model search acceptance contract:
//!
//! * `islands(1)` (or unset) keeps the single-population engine and
//!   its artifacts byte for byte — the default path is untouched;
//! * an archipelago's merged front and full `Selected` artifact are
//!   byte-identical at any evaluator worker budget;
//! * resuming an island run from any persisted epoch checkpoint
//!   reproduces the uninterrupted run bit-exactly, across crash/resume
//!   thread-budget combinations (the `IslandModel` property mirror of
//!   `checkpoint_resume.rs`).

use std::cell::RefCell;
use std::time::Duration;

use proptest::prelude::*;

use printed_mlps::axc::{AxTrainConfig, CachedEvaluator, Selected, Study, StudyConfig};
use printed_mlps::datasets::Dataset;
use printed_mlps::nsga::{
    Evaluation, IntProblem, IslandCheckpoint, IslandCheckpointSink, IslandConfig, IslandModel,
    NsgaConfig, NsgaResult,
};

/// A small-but-real GA budget: large enough that islands migrate
/// several times (default cadence 5 < 8 generations), small enough
/// for CI.
fn base_config(seed: u64) -> StudyConfig {
    StudyConfig {
        seed,
        ga: AxTrainConfig {
            fitness_subsample: Some(150),
            nsga: NsgaConfig {
                population: 16,
                generations: 8,
                seed,
                ..NsgaConfig::default()
            },
            ..AxTrainConfig::default()
        },
        sgd_epochs_scale: 0.05,
        ..StudyConfig::default()
    }
}

/// The canonical byte-comparison form: the full `Selected` artifact
/// with the search wall clock (the only nondeterministic field)
/// zeroed.
fn zeroed_json(selected: &Selected) -> String {
    let mut clone = selected.clone();
    clone.searched.outcome.ga_wall = Duration::ZERO;
    serde_json::to_string(&clone).expect("selected artifact serializes")
}

fn run(islands: usize, threads: usize) -> (String, Selected) {
    let mut study = Study::for_dataset(Dataset::BreastCancer)
        .config(base_config(11))
        .eval_threads(threads);
    if islands > 0 {
        study = study.islands(islands);
    }
    let pipeline = study.finish().expect("island configs are valid");
    let expected = if islands >= 2 {
        "nsga2-axc-islands"
    } else {
        "nsga2-axc"
    };
    assert_eq!(pipeline.engine_name(), expected);
    let selected = pipeline.run().expect("uncancelled study succeeds");
    (zeroed_json(&selected), selected)
}

/// `islands(1)` must select the plain engine and reproduce the
/// unset-islands artifact byte for byte — the cache keys and outputs
/// of every existing study are untouched by this feature.
#[test]
fn one_island_is_the_single_population_study_bit_for_bit() {
    let (plain, _) = run(0, 2);
    let (one_island, _) = run(1, 2);
    assert_eq!(plain, one_island);
}

/// The worker budget must be invisible in every artifact byte, for
/// every archipelago size; the merged history keeps each island's full
/// generation log (in island order).
#[test]
fn merged_artifacts_are_byte_identical_across_worker_budgets() {
    for islands in [2usize, 4] {
        let (serial, selected) = run(islands, 1);
        let generations = base_config(11).ga.nsga.generations;
        assert_eq!(
            selected.searched.outcome.history.len(),
            islands * generations,
            "merged history holds every island's generation log"
        );
        assert!(!selected.searched.outcome.front.is_empty());
        for threads in [2usize, 8] {
            let (threaded, _) = run(islands, threads);
            assert_eq!(
                serial, threaded,
                "islands={islands}: artifact changed between 1 and {threads} workers"
            );
        }
    }
}

// ---------------------------------------------------------------------
// IslandModel-level property: epoch-checkpoint resume and thread
// determinism over the real batched evaluator.

/// The same deterministic two-objective toy problem
/// `checkpoint_resume.rs` uses (gene sum vs distance from a per-gene
/// target), so fronts hold several mutually non-dominated points.
struct Ridge {
    bounds: Vec<u32>,
}

impl IntProblem for Ridge {
    fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    fn evaluate(&self, genes: &[u32]) -> Evaluation {
        let sum: f64 = genes.iter().map(|&g| f64::from(g)).sum();
        let miss: f64 = genes
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let target = f64::from(self.bounds[i] - 1) * 0.7 + i as f64;
                (f64::from(g) - target).powi(2)
            })
            .sum();
        Evaluation::feasible(vec![sum, miss.sqrt()])
    }
}

/// In-memory sink capturing every epoch snapshot in emission order.
#[derive(Default)]
struct Capture(RefCell<Vec<IslandCheckpoint>>);

impl IslandCheckpointSink for Capture {
    fn save(&self, checkpoint: &IslandCheckpoint) {
        self.0.borrow_mut().push(checkpoint.clone());
    }
}

fn island_config(islands: usize, seed: u64, population: usize, generations: usize) -> IslandConfig {
    IslandConfig {
        nsga: NsgaConfig {
            population,
            generations,
            seed,
            ..NsgaConfig::default()
        },
        islands,
        migration_every: 2,
        migrants: 1,
    }
}

/// One full serial-reference run at the given evaluator worker count,
/// capturing an `IslandCheckpoint` at every epoch barrier.
fn run_capturing(config: &IslandConfig, threads: usize) -> (NsgaResult, Vec<IslandCheckpoint>) {
    let problem = CachedEvaluator::with_options(
        Ridge {
            bounds: vec![48; 5],
        },
        256,
        threads,
    );
    let sink = Capture::default();
    let model = IslandModel::new(config.clone());
    let result = model.run(&problem, Vec::new(), None, Some(&sink), |_, _| true);
    (result, sink.0.into_inner())
}

/// Resume from `checkpoint` (after a JSON persistence round-trip, like
/// the pipeline's on-disk epoch file) at the given worker count.
fn resume(config: &IslandConfig, checkpoint: &IslandCheckpoint, threads: usize) -> NsgaResult {
    let problem = CachedEvaluator::with_options(
        Ridge {
            bounds: vec![48; 5],
        },
        256,
        threads,
    );
    let json = serde_json::to_string(checkpoint).expect("island checkpoint serializes");
    let restored: IslandCheckpoint = serde_json::from_str(&json).expect("island checkpoint parses");
    restored
        .validate(config, problem.bounds())
        .expect("round-tripped island checkpoint is valid");
    let model = IslandModel::new(config.clone());
    model.run(&problem, Vec::new(), Some(restored), None, |_, _| true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every epoch checkpoint of a seeded island run resumes to the
    /// uninterrupted merged result, bit for bit, at one worker and at
    /// eight — in every crash×resume thread-budget combination.
    #[test]
    fn resuming_from_every_epoch_checkpoint_is_bit_exact_across_thread_budgets(
        seed in any::<u64>(),
        islands in 2usize..=4,
        generations in 4usize..8,
    ) {
        let config = island_config(islands, seed, 12, generations);

        let (serial, serial_cps) = run_capturing(&config, 1);
        let (threaded, threaded_cps) = run_capturing(&config, 8);
        // The evaluator's worker count is invisible to the archipelago:
        // both references and their epoch streams agree.
        prop_assert_eq!(&serial, &threaded);
        prop_assert_eq!(&serial_cps, &threaded_cps);
        prop_assert_eq!(serial_cps.len(), config.epoch_targets().len());

        for checkpoint in &serial_cps {
            for threads in [1, 8] {
                let resumed = resume(&config, checkpoint, threads);
                prop_assert_eq!(&resumed.pareto_front, &serial.pareto_front);
                prop_assert_eq!(&resumed.population, &serial.population);
                prop_assert_eq!(resumed.evaluations, serial.evaluations);
                prop_assert_eq!(resumed.generations, serial.generations);
            }
        }
    }
}
