//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde::Value` data model as JSON text. Only
//! the API surface this workspace uses is provided:
//! [`to_string_pretty`] (and [`to_string`] for good measure).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The vendored data model is always renderable,
/// so this is never actually produced, but the `Result` shape matches
/// real `serde_json`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value as pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point
                // or exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(xs) => render_block('[', ']', xs.len(), indent, depth, out, |i, out| {
            render(&xs[i], indent, depth + 1, out);
        }),
        Value::Map(entries) => {
            render_block('{', '}', entries.len(), indent, depth, out, |i, out| {
                let (k, val) = &entries[i];
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            });
        }
    }
}

fn render_block(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
