//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde::Value` data model as JSON text and
//! parses it back. Only the API surface this workspace uses is
//! provided: [`to_string_pretty`], [`to_string`] and [`from_str`].

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization error. The vendored data model is always renderable,
/// so this is never actually produced, but the `Result` shape matches
/// real `serde_json`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value as pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point
                // or exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(xs) => render_block('[', ']', xs.len(), indent, depth, out, |i, out| {
            render(&xs[i], indent, depth + 1, out);
        }),
        Value::Map(entries) => {
            render_block('{', '}', entries.len(), indent, depth, out, |i, out| {
                let (k, val) = &entries[i];
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            });
        }
    }
}

fn render_block(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Parse JSON text into any [`Deserialize`] type.
///
/// Numbers without a fraction or exponent become integers (`U64`, or
/// `I64` when negative); everything else becomes `F64` — matching what
/// the renderer above emits, so values round-trip.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("non-ASCII \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // The renderer only emits \u for control
                            // characters; surrogate pairs are out of
                            // scope for this stand-in.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape {:?}", char::from(other))))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad float {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad integer {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad integer {text:?}")))
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut text = String::new();
        render(v, None, 0, &mut text);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let back = p.parse_value().expect("parse");
        assert_eq!(&back, v, "round-trip through {text}");
    }

    #[test]
    fn values_round_trip_through_text() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::U64(u64::MAX));
        round_trip(&Value::I64(i64::MIN));
        round_trip(&Value::F64(0.1 + 0.2));
        round_trip(&Value::F64(-1.5e300));
        round_trip(&Value::F64(3.0));
        round_trip(&Value::Str("line\n\"quoted\" \\ tab\t\u{1}\u{e9}".into()));
        round_trip(&Value::Seq(vec![Value::U64(1), Value::Null]));
        round_trip(&Value::Map(vec![
            ("a".into(), Value::Seq(vec![])),
            ("b".into(), Value::Map(vec![])),
        ]));
    }

    #[test]
    fn typed_from_str_parses_pretty_output() {
        let v: Vec<Option<f64>> = vec![Some(1.25), None, Some(-3.0)];
        let text = to_string_pretty(&v).expect("render");
        let back: Vec<Option<f64>> = from_str(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<String>("\"\\q\"").is_err());
    }
}
