//! `any::<T>()` — whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, Standard};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Build the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T` (uniform over all values).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy sampling `rand`'s `Standard` distribution for `T`.
pub struct StandardStrategy<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for StandardStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
