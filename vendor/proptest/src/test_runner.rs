//! The deterministic case runner behind the `proptest!` macro.

use crate::strategy::Strategy;

/// The RNG driving strategy generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (resampled, not counted).
    Reject(String),
    /// An assertion failed: the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Kept for API parity with the real proptest; [`run_cases`] is the
/// actual entry point used by the macro expansion.
#[derive(Debug, Default)]
pub struct TestRunner;

/// Derive the base RNG seed for a test: `PROPTEST_SEED` if set, else a
/// stable hash of the test name (deterministic across runs and hosts).
fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            return n;
        }
    }
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cfg.cases` successful cases of `f` over values of `strat`,
/// panicking (with seed and case index) on the first failure.
pub fn run_cases<S, F>(name: &str, cfg: ProptestConfig, strat: &S, mut f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;

    let seed = base_seed(name);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = cfg.cases.saturating_mul(16).max(1024);
    while passed < cfg.cases {
        let value = strat.generate(&mut rng);
        match f(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many prop_assume! rejections ({why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s) \
                     (seed {seed}, rerun with PROPTEST_SEED={seed}):\n{msg}"
                );
            }
        }
    }
}
