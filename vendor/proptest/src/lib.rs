//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Offline builds cannot fetch the real proptest, so this crate
//! provides the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range /
//! tuple / [`strategy::Just`] / [`arbitrary::any`] strategies, the
//! [`collection::vec`] combinator, `prop_map` / `prop_flat_map`,
//! [`prop_oneof!`], and the `prop_assert*` family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its seed and case index
//!   instead of a minimized input;
//! * **deterministic seeding** — each test function derives its RNG
//!   seed from its own name (override with `PROPTEST_SEED`), so runs
//!   are reproducible in CI by construction.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                ::core::stringify!($name),
                $cfg,
                &($($strat,)+),
                |($($pat,)+)| {
                    $body;
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            ::core::stringify!($lhs),
            ::core::stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Fail the current case unless both sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            ::core::stringify!($lhs),
            ::core::stringify!($rhs),
            lhs
        );
    }};
}

/// Discard the current case (resampled, not counted) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
