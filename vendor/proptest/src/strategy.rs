//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// The real proptest pairs generation with a shrinking `ValueTree`;
/// this vendored version generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value and sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying a predicate (resampling otherwise).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 candidates in a row",
            self.whence
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
    (inclusive $($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_range_strategy!(inclusive u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident / $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
