//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of serde it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, derive macros for plain
//! structs and enums, and a small JSON-like [`Value`] data model that
//! the vendored `serde_json` renders. The derive macros accept the
//! `#[serde(default)]` field attribute; everything else of serde's
//! attribute language is intentionally out of scope.
//!
//! The serialized shape follows serde's externally-tagged conventions:
//! unit enum variants become strings, newtype variants become
//! single-entry maps, and structs become maps in field order.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree: the data model both traits work over.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// View this value as a map, if it is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View this value as a sequence, if it is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a key in an ordered map body.
#[must_use]
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => Ok(*n),
                    Value::I64(n) if *n >= 0 => Ok(*n as u64),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(n) => Ok(*n),
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for i64"))),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);
impl_ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs: Vec<T> = Vec::from_value(v)?;
        let got = xs.len();
        xs.try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {got}")))
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let xs = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                let mut it = xs.iter();
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom("expected {secs, nanos} map for Duration"))?;
        let secs = map_get(m, "secs")
            .map(u64::from_value)
            .transpose()?
            .ok_or_else(|| DeError::custom("Duration: missing secs"))?;
        let nanos = map_get(m, "nanos")
            .map(u32::from_value)
            .transpose()?
            .ok_or_else(|| DeError::custom("Duration: missing nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}
