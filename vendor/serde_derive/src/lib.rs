//! Derive macros for the vendored minimal `serde` stand-in.
//!
//! Parses the deriving item directly from the `proc_macro` token stream
//! (no `syn`/`quote` available offline) and emits `Serialize` /
//! `Deserialize` impls against the small `serde::Value` data model.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (`#[serde(default)]` honoured),
//! * tuple structs (newtype and longer),
//! * enums with unit, tuple, and struct variants,
//! * no generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
enum Fields {
    Unit,
    /// Tuple fields: the arity.
    Tuple(usize),
    /// Named fields: `(name, has_serde_default)`.
    Named(Vec<(String, bool)>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` (vendored data-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize` (vendored data-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if serialize {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generics (on `{name}`)"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

/// Skip `#[...]` attributes; report whether any was `#[serde(default)]`.
fn skip_attributes(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= is_serde_default(g.stream());
                *i += 2;
            }
            _ => return has_default,
        }
    }
}

fn is_serde_default(attr_body: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr_body.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type (or expression) to the next top-level comma,
/// tracking `<...>` nesting. Delimited groups arrive as single tokens.
fn skip_to_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let has_default = skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_to_top_level_comma(&toks, &mut i);
        i += 1; // consume the comma (or run off the end)
        fields.push((name, has_default));
    }
    Ok(Fields::Named(fields))
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_to_top_level_comma(&toks, &mut i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())?
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_top_level_comma(&toks, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn ser_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::serde::Value::Str({name:?}.to_string())"),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let items: Vec<String> = fs
                .iter()
                .map(|(f, _)| {
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
        }
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![({vname:?}.to_string(), {payload})]),",
                        binds = binds.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds: Vec<String> = fs.iter().map(|(f, _)| f.clone()).collect();
                    let items: Vec<String> = fs
                        .iter()
                        .map(|(f, _)| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![({vname:?}.to_string(), ::serde::Value::Map(::std::vec![{items}]))]),",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Expression deserializing named fields from a map expression `m` into
/// a `Name { .. }` / `Name::Variant { .. }` constructor.
fn de_named_ctor(ctor: &str, fs: &[(String, bool)]) -> String {
    let inits: Vec<String> = fs
        .iter()
        .map(|(f, has_default)| {
            let missing = if *has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{ctor}: missing field `{f}`\")))"
                )
            };
            format!(
                "{f}: match ::serde::map_get(m, {f:?}) {{\n\
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }},"
            )
        })
        .collect();
    format!("{ctor} {{\n{}\n}}", inits.join("\n"))
}

/// Expression deserializing `n` tuple fields from a slice expression
/// `xs` into a `Name(..)` / `Name::Variant(..)` constructor.
fn de_tuple_ctor(ctor: &str, n: usize) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "::serde::Deserialize::from_value(xs.get({i}).ok_or_else(|| \
                 ::serde::DeError::custom(\"{ctor}: sequence too short\"))?)?"
            )
        })
        .collect();
    format!("{ctor}({})", inits.join(", "))
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => format!(
            "let xs = v.as_seq().ok_or_else(|| \
             ::serde::DeError::custom(\"{name}: expected sequence\"))?;\n\
             ::std::result::Result::Ok({})",
            de_tuple_ctor(name, *n)
        ),
        Fields::Named(fs) => format!(
            "let m = v.as_map().ok_or_else(|| \
             ::serde::DeError::custom(\"{name}: expected map\"))?;\n\
             ::std::result::Result::Ok({})",
            de_named_ctor(name, fs)
        ),
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vname = &v.name;
            let ctor = format!("{name}::{vname}");
            let build = match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value(inner)?))"
                ),
                Fields::Tuple(n) => format!(
                    "{{ let xs = inner.as_seq().ok_or_else(|| \
                     ::serde::DeError::custom(\"{ctor}: expected sequence\"))?;\n\
                     ::std::result::Result::Ok({}) }}",
                    de_tuple_ctor(&ctor, *n)
                ),
                Fields::Named(fs) => format!(
                    "{{ let m = inner.as_map().ok_or_else(|| \
                     ::serde::DeError::custom(\"{ctor}: expected map\"))?;\n\
                     ::std::result::Result::Ok({}) }}",
                    de_named_ctor(&ctor, fs)
                ),
            };
            format!("{vname:?} => {build},")
        })
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown variant `{{other}}`\"))),\n\
             }},\n\
             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{\n\
                     {data}\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"{name}: expected variant, got {{other:?}}\"))),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
