//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Offline builds cannot fetch the real criterion, so this crate keeps
//! the workspace's `[[bench]]` targets compiling and running with the
//! same source: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and [`black_box`]. It measures plain
//! wall-clock means (no statistics, outlier analysis, or HTML reports)
//! and prints one line per benchmark.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup; accepted for
/// compatibility, ignored by this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark and print its mean wall-clock time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX));
            }
        }
        let mean = if samples.is_empty() {
            Duration::ZERO
        } else {
            samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1)
        };
        let min = samples.iter().min().copied().unwrap_or(Duration::ZERO);
        let max = samples.iter().max().copied().unwrap_or(Duration::ZERO);
        println!(
            "bench: {id:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({n} samples)",
            n = samples.len()
        );
        self
    }
}

/// Times closures inside one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time repeated calls of a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Time a routine on inputs built by an untimed setup closure.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Group benchmark targets under one entry function, mirroring
/// criterion's two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
