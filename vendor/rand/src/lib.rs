//! Vendored minimal stand-in for the `rand` crate (0.8-flavoured API).
//!
//! The build environment is offline, so the workspace carries the small
//! subset of `rand` it uses: [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256\*\* seeded via SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are **not** bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a (half-open or inclusive) range.
    ///
    /// Panics on empty ranges, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to `[0, 1)` with 24-bit precision.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real `rand`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u128 + 1;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = $unit(rng.next_u64());
                let v = self.start + f * (self.end - self.start);
                // `f < 1` but the scaling can round up to the excluded
                // end; remap that edge so the bound stays exclusive.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_sample_range_float!(f64 => unit_f64, f32 => unit_f32);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (deterministic stream).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\*, seeded through
    /// SplitMix64 like the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot the full xoshiro256\*\* state. Together with
        /// [`StdRng::from_state`] this lets callers checkpoint a stream
        /// mid-run and resume it bit-exactly.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild an RNG from a state captured by [`StdRng::state`].
        /// The resumed stream continues exactly where the snapshot was
        /// taken.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            let _ = a.gen_range(0u64..1_000_000);
        }
        let snapshot = a.state();
        let mut b = StdRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let w = rng.gen_range(3u8..=6);
            assert!((3..=6).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
